"""Property tests: engine-vs-loop bit-equality over the config space.

The directed parity tests (tests/sim/test_machine_engine.py) pin the
canned workloads; these sample machine shapes — {1,2,3}-D tori,
replicated and collocated mappings, both fabrics, ``network_speedup ∈
{1, 2}``, light and saturated loads — and require the event-calendar
engine to reproduce the per-cycle loop bit for bit: same summary dict,
same tracer event stream and samples, same telemetry snapshot.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.strategies import (
    block_collocation_mapping,
    identity_mapping,
)
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.telemetry import TelemetryConfig
from repro.sim.trace import Tracer
from repro.topology.graphs import ring_graph, torus_neighbor_graph
from repro.workload.synthetic import build_programs


#: (dimensions, radix) pairs kept small enough for many examples.
SHAPES = [(1, 4), (1, 8), (2, 3), (2, 4), (3, 2), (3, 3)]


@st.composite
def machine_cases(draw):
    dimensions, radix = draw(st.sampled_from(SHAPES))
    contexts = draw(st.integers(1, 2))
    return {
        "dimensions": dimensions,
        "radix": radix,
        "contexts": contexts,
        "compute": draw(st.sampled_from([8, 60, 400])),
        "switching": draw(st.sampled_from(["cut_through", "wormhole"])),
        "speedup": draw(st.sampled_from([1, 2])),
        "seed": draw(st.integers(0, 2**16)),
        "collocated": contexts == 2 and draw(st.booleans()),
    }


def build(engine, case):
    config = SimulationConfig(
        radix=case["radix"],
        dimensions=case["dimensions"],
        contexts=case["contexts"],
        compute_cycles=case["compute"],
        switching=case["switching"],
        network_speedup=case["speedup"],
        seed=case["seed"],
    )
    nodes = config.node_count
    if case["collocated"]:
        graph = ring_graph(nodes * config.contexts)
        programs = build_programs(
            graph, 1, case["compute"], config.compute_jitter
        )
        mapping = block_collocation_mapping(nodes * config.contexts, nodes)
    else:
        graph = torus_neighbor_graph(case["radix"], case["dimensions"])
        programs = build_programs(
            graph, config.contexts, case["compute"], config.compute_jitter
        )
        mapping = identity_mapping(nodes)
    machine = Machine(config, mapping, programs, engine=engine)
    tracer = Tracer(sample_interval=64)
    machine.attach_tracer(tracer)
    telemetry = machine.attach_telemetry(TelemetryConfig(epoch_cycles=100))
    return machine, tracer, telemetry


class TestEngineParityProperties:
    @settings(max_examples=20, deadline=None)
    @given(machine_cases())
    def test_engine_is_bit_identical_to_step_loop(self, case):
        loop, loop_tracer, loop_tel = build(False, case)
        engine, engine_tracer, engine_tel = build(True, case)
        loop_summary = loop.run(warmup=200, measure=800).as_dict()
        engine_summary = engine.run(warmup=200, measure=800).as_dict()
        assert loop_summary == engine_summary, {
            key: (loop_summary[key], engine_summary[key])
            for key in loop_summary
            if loop_summary[key] != engine_summary[key]
        }
        assert list(loop_tracer.events) == list(engine_tracer.events)
        assert loop_tracer.samples == engine_tracer.samples
        assert loop_tel.snapshot() == engine_tel.snapshot()

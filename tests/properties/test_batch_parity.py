"""Property tests: batched-vs-serial bit-equality over the config space.

The directed batch tests (tests/sim/test_batch.py) pin canned shapes;
these sample machine shapes — {1,2,3}-D tori, identity and collocated
mappings, both fabrics, ``network_speedup ∈ {1, 2}`` — and require the
lockstep batch engine to reproduce each seed's solo ``Machine`` run bit
for bit, whichever engine (compiled core or pure Python) the batch
machine selected for the shape.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.strategies import (
    block_collocation_mapping,
    identity_mapping,
)
from repro.sim.batch import run_batch
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.graphs import ring_graph, torus_neighbor_graph
from repro.workload.synthetic import build_programs


#: (dimensions, radix) pairs kept small enough for many examples.
SHAPES = [(1, 4), (1, 8), (2, 3), (2, 4), (3, 2), (3, 3)]


@st.composite
def machine_cases(draw):
    dimensions, radix = draw(st.sampled_from(SHAPES))
    contexts = draw(st.integers(1, 2))
    return {
        "dimensions": dimensions,
        "radix": radix,
        "contexts": contexts,
        "compute": draw(st.sampled_from([8, 60, 400])),
        "switching": draw(st.sampled_from(["cut_through", "wormhole"])),
        "speedup": draw(st.sampled_from([1, 2])),
        "seed": draw(st.integers(0, 2**16)),
        "collocated": contexts == 2 and draw(st.booleans()),
    }


def build_setup(case):
    config = SimulationConfig(
        radix=case["radix"],
        dimensions=case["dimensions"],
        contexts=case["contexts"],
        compute_cycles=case["compute"],
        switching=case["switching"],
        network_speedup=case["speedup"],
        seed=case["seed"],
    )
    nodes = config.node_count
    if case["collocated"]:
        graph = ring_graph(nodes * config.contexts)
        programs = build_programs(
            graph, 1, case["compute"], config.compute_jitter
        )
        mapping = block_collocation_mapping(nodes * config.contexts, nodes)
    else:
        graph = torus_neighbor_graph(case["radix"], case["dimensions"])
        programs = build_programs(
            graph, config.contexts, case["compute"], config.compute_jitter
        )
        mapping = identity_mapping(nodes)
    return config, mapping, programs


class TestBatchParityProperties:
    @settings(max_examples=15, deadline=None)
    @given(machine_cases())
    def test_batch_is_bit_identical_to_serial_per_seed(self, case):
        config, mapping, programs = build_setup(case)
        seeds = (config.seed, config.seed + 1)
        batched = run_batch(
            config, mapping, programs, seeds, warmup=200, measure=600
        )
        for seed, summary in zip(seeds, batched):
            solo = Machine(
                config.with_seed(seed), mapping, copy.deepcopy(programs)
            ).run(warmup=200, measure=600)
            batch_dict = summary.as_dict()
            solo_dict = solo.as_dict()
            assert batch_dict == solo_dict, {
                key: (batch_dict[key], solo_dict[key])
                for key in solo_dict
                if batch_dict[key] != solo_dict[key]
            }

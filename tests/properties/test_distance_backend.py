"""Parity suite for the delta-compressed distance engine.

The dense N x N table is the oracle: the delta backend (per-dimension
ring rows gathered over coordinate deltas) must reproduce it bit for
bit on every (k, n) in the paper's envelope — k in 1..9, n in 1..4,
including the even-radix half-way tie — and the annealer must walk the
exact same trajectory whichever backend prices its swaps.  The guard
accessor itself is pinned: one place decides dense vs delta vs digit.
"""

import numpy as np
import pytest

import repro.topology.torus as torus_module
from repro.mapping.anneal import anneal_mapping
from repro.mapping.chains import anneal_chains
from repro.mapping.strategies import random_mapping
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import (
    DeltaBackend,
    DenseBackend,
    DigitBackend,
    Torus,
    distance_backend,
)

# The full (k, n) grid the issue pins: k in 1..9, n in 1..4.
GRID = [(k, n) for k in range(1, 10) for n in range(1, 5)]


@pytest.mark.parametrize("radix,dimensions", GRID)
def test_delta_matches_dense_bit_for_bit(radix, dimensions):
    torus = Torus(radix=radix, dimensions=dimensions)
    count = torus.node_count
    # Oracle: the dense table, built past the default guard if needed.
    table = torus.distance_table(max_nodes=count)
    delta = DeltaBackend(torus)
    if count <= 1024:
        nodes = np.arange(count, dtype=np.intp)
        got = delta.pairwise(nodes[:, None], nodes[None, :])
        assert np.array_equal(got, table.astype(np.int64))
    else:
        # Larger shapes: every destination against seeded source rows.
        rng = np.random.default_rng(radix * 100 + dimensions)
        sources = rng.integers(0, count, size=64)
        got = delta.pairwise(sources[:, None], np.arange(count)[None, :])
        assert np.array_equal(got, table[sources].astype(np.int64))


@pytest.mark.parametrize("radix", [2, 4, 6, 8])
def test_even_radix_halfway_tie(radix):
    # The antipodal offset k/2 is the same distance both ways around the
    # ring; the compressed row must agree with the digit walk exactly.
    torus = Torus(radix=radix, dimensions=2)
    delta = DeltaBackend(torus)
    half = radix // 2
    antipode = torus.node_at((half, half))
    assert int(delta.pairwise(0, antipode)) == torus.distance(0, antipode)
    assert int(delta.pairwise(0, antipode)) == 2 * half


@pytest.mark.parametrize("radix,dimensions", [(3, 2), (7, 3), (9, 4)])
def test_delta_matches_digit_walk(radix, dimensions):
    torus = Torus(radix=radix, dimensions=dimensions)
    rng = np.random.default_rng(7)
    src = rng.integers(0, torus.node_count, size=256)
    dst = rng.integers(0, torus.node_count, size=256)
    delta = DeltaBackend(torus).pairwise(src, dst)
    assert np.array_equal(delta, torus.pairwise_distance(src, dst))


class TestBackendSelection:
    def test_dense_below_guard(self):
        backend = distance_backend(Torus(radix=8, dimensions=2))
        assert isinstance(backend, DenseBackend)
        assert backend.kind == "dense"
        assert backend.table is not None

    def test_delta_above_table_guard(self):
        backend = distance_backend(Torus(radix=100, dimensions=2))
        assert isinstance(backend, DeltaBackend)
        assert backend.kind == "delta"
        assert backend.table is None

    def test_digit_above_delta_guard(self, monkeypatch):
        monkeypatch.setattr(torus_module, "DELTA_BACKEND_MAX_NODES", 1)
        backend = distance_backend(Torus(radix=100, dimensions=2))
        assert isinstance(backend, DigitBackend)
        assert backend.kind == "digit"

    def test_guard_read_dynamically(self, monkeypatch):
        # The accessor must honor runtime changes to the table cap (the
        # historical fallback tests monkeypatch it mid-run).
        torus = Torus(radix=4, dimensions=2)
        assert isinstance(distance_backend(torus), DenseBackend)
        monkeypatch.setattr(torus_module, "DISTANCE_TABLE_MAX_NODES", 1)
        assert isinstance(distance_backend(torus), DeltaBackend)


class TestTrajectoryEquality:
    """Fixed-seed anneal runs must be identical dense vs delta."""

    @pytest.mark.parametrize("radix,dimensions", [(8, 2), (4, 3), (16, 2)])
    def test_anneal_trajectory(self, radix, dimensions, monkeypatch):
        torus = Torus(radix=radix, dimensions=dimensions)
        graph = torus_neighbor_graph(radix, dimensions)
        start = random_mapping(torus.node_count, seed=11)
        dense = anneal_mapping(graph, torus, start, steps=800, seed=11)
        monkeypatch.setattr(torus_module, "DISTANCE_TABLE_MAX_NODES", 1)
        delta = anneal_mapping(graph, torus, start, steps=800, seed=11)
        assert dense.mapping.assignment == delta.mapping.assignment
        assert dense.distance == delta.distance
        assert dense.best_distance == delta.best_distance
        assert dense.accepted_moves == delta.accepted_moves
        assert dense.attempted_moves == delta.attempted_moves

    def test_chain_trajectories(self, monkeypatch):
        torus = Torus(radix=8, dimensions=2)
        graph = torus_neighbor_graph(8, 2)
        start = random_mapping(torus.node_count, seed=5)
        dense = anneal_chains(graph, torus, start, chains=3, steps=400, seed=5)
        monkeypatch.setattr(torus_module, "DISTANCE_TABLE_MAX_NODES", 1)
        delta = anneal_chains(graph, torus, start, chains=3, steps=400, seed=5)
        assert list(dense.distances) == list(delta.distances)
        assert dense.best_index == delta.best_index
        assert dense.best.mapping.assignment == delta.best.mapping.assignment

"""Property-based tests for torus geometry and mappings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.evaluate import average_distance, distance_histogram
from repro.mapping.strategies import random_mapping
from repro.topology.distance import (
    random_traffic_distance,
    random_traffic_distance_exact,
)
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus

radices = st.integers(min_value=2, max_value=9)
small_dims = st.integers(min_value=1, max_value=3)


def torus_and_nodes():
    return radices.flatmap(
        lambda k: small_dims.flatmap(
            lambda n: st.tuples(
                st.just(Torus(radix=k, dimensions=n)),
                st.integers(min_value=0, max_value=k**n - 1),
                st.integers(min_value=0, max_value=k**n - 1),
            )
        )
    )


class TestTorusMetricProperties:
    @settings(max_examples=150)
    @given(torus_and_nodes())
    def test_distance_is_a_metric(self, tna):
        torus, a, b = tna
        assert torus.distance(a, b) == torus.distance(b, a)
        assert (torus.distance(a, b) == 0) == (a == b)
        assert torus.distance(a, b) <= torus.diameter()

    @settings(max_examples=150)
    @given(torus_and_nodes())
    def test_coordinate_roundtrip(self, tna):
        torus, a, _ = tna
        assert torus.node_at(torus.coordinates(a)) == a

    @settings(max_examples=100)
    @given(torus_and_nodes())
    def test_ecube_route_is_shortest(self, tna):
        torus, a, b = tna
        route = torus.ecube_route(a, b)
        assert len(route) - 1 == torus.distance(a, b)
        for here, there in zip(route, route[1:]):
            assert torus.distance(here, there) == 1

    @settings(max_examples=100)
    @given(torus_and_nodes())
    def test_distance_vector_consistency(self, tna):
        torus, a, b = tna
        vector = torus.distance_vector(a, b)
        assert sum(abs(v) for v in vector) == torus.distance(a, b)
        # Applying the vector reaches the destination.
        coords = list(torus.coordinates(a))
        for dim, offset in enumerate(vector):
            coords[dim] = (coords[dim] + offset) % torus.radix
        assert torus.node_at(coords) == b


class TestEq17Properties:
    @settings(max_examples=60)
    @given(radices, small_dims)
    def test_closed_form_bounds_exact(self, radix, dims):
        closed = random_traffic_distance(radix, dims)
        exact = random_traffic_distance_exact(radix, dims)
        if radix % 2 == 0:
            assert abs(closed - exact) < 1e-9
        else:
            assert closed >= exact

    @settings(max_examples=60)
    @given(st.floats(min_value=2.0, max_value=1000.0), small_dims)
    def test_distance_below_diameter_scale(self, radix, dims):
        # Mean distance cannot exceed n*k/2 (the torus diameter scale).
        assert random_traffic_distance(radix, dims) <= dims * radix / 2.0


class TestMappingProperties:
    @settings(max_examples=40)
    @given(st.integers(min_value=2, max_value=6), st.integers(0, 1000))
    def test_random_mapping_distance_bounds(self, radix, seed):
        torus = Torus(radix=radix, dimensions=2)
        graph = torus_neighbor_graph(radix, 2)
        mapping = random_mapping(torus.node_count, seed)
        avg = average_distance(graph, mapping, torus)
        assert 0.0 <= avg <= torus.diameter()

    @settings(max_examples=40)
    @given(st.integers(min_value=2, max_value=6), st.integers(0, 1000))
    def test_histogram_mass_conserved(self, radix, seed):
        torus = Torus(radix=radix, dimensions=2)
        graph = torus_neighbor_graph(radix, 2)
        mapping = random_mapping(torus.node_count, seed)
        histogram = distance_histogram(graph, mapping, torus)
        assert sum(histogram.values()) == graph.total_weight
        mean = sum(d * w for d, w in histogram.items()) / graph.total_weight
        assert abs(mean - average_distance(graph, mapping, torus)) < 1e-9

"""Property tests for the vectorized locality engine.

Pins the array kernels against their loop-based executable
specifications: the distance table and broadcast distances against the
digit-based ``Torus.distance``, the closed-form ring sum against brute
force, and the gather-based evaluation kernels against the per-edge
loops kept alive in :mod:`repro.mapping.reference`.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.evaluate import average_distance, distance_histogram
from repro.mapping.strategies import random_mapping
from repro.mapping.reference import (
    reference_average_distance,
    reference_distance_histogram,
)
from repro.topology.graphs import CommunicationGraph, torus_neighbor_graph
from repro.topology.torus import Torus

# Shapes small enough that brute-force loops stay fast but covering
# odd/even radix and 1..3 dimensions (N up to a few hundred nodes).
shapes = st.tuples(
    st.integers(min_value=2, max_value=7), st.integers(min_value=1, max_value=3)
)


class TestDistanceTable:
    @settings(max_examples=30, deadline=None)
    @given(shapes, st.randoms(use_true_random=False))
    def test_table_matches_digit_distance(self, shape, rng):
        radix, dimensions = shape
        torus = Torus(radix=radix, dimensions=dimensions)
        table = torus.distance_table()
        assert table is not None
        assert table.shape == (torus.node_count, torus.node_count)
        for _ in range(20):
            a = rng.randrange(torus.node_count)
            b = rng.randrange(torus.node_count)
            assert int(table[a, b]) == torus.distance(a, b)

    @settings(max_examples=30, deadline=None)
    @given(shapes, st.randoms(use_true_random=False))
    def test_pairwise_matches_digit_distance(self, shape, rng):
        radix, dimensions = shape
        torus = Torus(radix=radix, dimensions=dimensions)
        sources = np.array(
            [rng.randrange(torus.node_count) for _ in range(16)]
        )
        destinations = np.array(
            [rng.randrange(torus.node_count) for _ in range(16)]
        )
        hops = torus.pairwise_distance(sources, destinations)
        for src, dst, got in zip(sources, destinations, hops):
            assert int(got) == torus.distance(int(src), int(dst))

    @settings(max_examples=30, deadline=None)
    @given(shapes)
    def test_coordinate_array_matches_coordinates(self, shape):
        radix, dimensions = shape
        torus = Torus(radix=radix, dimensions=dimensions)
        coords = torus.coordinate_array()
        assert coords.shape == (dimensions, torus.node_count)
        for node in range(torus.node_count):
            assert tuple(coords[:, node]) == torus.coordinates(node)

    @settings(max_examples=30, deadline=None)
    @given(shapes)
    def test_memory_guard_returns_none_above_cap(self, shape):
        radix, dimensions = shape
        torus = Torus(radix=radix, dimensions=dimensions)
        assert torus.distance_table(max_nodes=torus.node_count - 1) is None
        assert torus.distance_table(max_nodes=torus.node_count) is not None

    @settings(max_examples=40, deadline=None)
    @given(shapes)
    def test_average_pair_distance_closed_form(self, shape):
        # The closed-form k*k//4 ring sum against an explicit all-pairs
        # brute force — exact for odd and even radix alike.
        radix, dimensions = shape
        torus = Torus(radix=radix, dimensions=dimensions)
        count = torus.node_count
        total = sum(
            torus.distance(a, b) for a in range(count) for b in range(count)
        )
        assert torus.average_pair_distance(include_self=True) == total / count**2
        if count > 1:
            assert torus.average_pair_distance() == total / (count * (count - 1))


def _random_integer_graph(threads, rng):
    """A random connected-ish graph with small integer weights."""
    edges = {}
    for _ in range(2 * threads):
        src = rng.randrange(threads)
        dst = rng.randrange(threads)
        if src == dst:
            continue
        edges[(src, dst)] = float(rng.randrange(1, 5))
    if not edges:
        edges[(0, 1)] = 1.0
    return CommunicationGraph(threads=threads, weights=edges)


class TestEvaluateParity:
    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=2, max_value=5),
            st.integers(min_value=1, max_value=3),
        ),
        st.integers(min_value=0, max_value=2**16),
        st.randoms(use_true_random=False),
    )
    def test_average_distance_matches_reference(self, shape, seed, rng):
        radix, dimensions = shape
        torus = Torus(radix=radix, dimensions=dimensions)
        graph = _random_integer_graph(torus.node_count, rng)
        mapping = random_mapping(torus.node_count, seed=seed)
        assert average_distance(graph, mapping, torus) == (
            reference_average_distance(graph, mapping, torus)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=2, max_value=5),
            st.integers(min_value=1, max_value=3),
        ),
        st.integers(min_value=0, max_value=2**16),
        st.randoms(use_true_random=False),
    )
    def test_histogram_matches_reference(self, shape, seed, rng):
        radix, dimensions = shape
        torus = Torus(radix=radix, dimensions=dimensions)
        graph = _random_integer_graph(torus.node_count, rng)
        mapping = random_mapping(torus.node_count, seed=seed)
        assert distance_histogram(graph, mapping, torus) == (
            reference_distance_histogram(graph, mapping, torus)
        )

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_guarded_torus_falls_back_identically(self, radix, seed):
        # Force the guard with a tiny cap: evaluation must silently use
        # the broadcast fallback and produce the same numbers.
        import repro.topology.torus as torus_module

        torus = Torus(radix=radix, dimensions=2)
        graph = torus_neighbor_graph(radix, 2)
        mapping = random_mapping(torus.node_count, seed=seed)
        with_table = average_distance(graph, mapping, torus)
        original = torus_module.DISTANCE_TABLE_MAX_NODES
        torus_module.DISTANCE_TABLE_MAX_NODES = 1
        try:
            assert torus.distance_table() is None
            assert average_distance(graph, mapping, torus) == with_table
        finally:
            torus_module.DISTANCE_TABLE_MAX_NODES = original

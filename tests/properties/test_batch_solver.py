"""Parity: the batched solver against the scalar reference solver.

``solve_batch`` must reproduce ``solve`` lane for lane — same bisection,
same closed-form fast paths, same extension handling — to within 1e-10
relative.  The grids below sweep distances, node parameters, and every
network-model extension combination over seeded random draws, so the
vectorized bracket updates are exercised across converged and
still-bisecting lanes simultaneously.
"""

import random

import numpy as np
import pytest

from repro.core import NodeModel, TorusNetworkModel, solve, solve_batch

_FIELDS = (
    "message_rate",
    "message_latency",
    "per_hop_latency",
    "utilization",
    "node_channel_delay",
    "distance",
    "transaction_rate",
    "issue_time",
    "transaction_latency",
)

_TOLERANCE = 1e-10


def _assert_parity(node, network, distances, sensitivity=None, intercept=None):
    batch = solve_batch(
        node, network, distances, sensitivity=sensitivity, intercept=intercept
    )
    for i, distance in enumerate(distances):
        lane_node = node
        if sensitivity is not None or intercept is not None:
            lane_node = NodeModel(
                sensitivity=(
                    node.sensitivity if sensitivity is None else sensitivity[i]
                ),
                intercept=(
                    node.intercept if intercept is None else intercept[i]
                ),
            )
        scalar = solve(lane_node, network, float(distance))
        for name in _FIELDS:
            got = float(getattr(batch, name)[i])
            want = getattr(scalar, name)
            scale = max(abs(want), 1.0)
            assert abs(got - want) <= _TOLERANCE * scale, (
                f"{name} lane {i} (d={distance}): batch {got!r} "
                f"vs scalar {want!r}"
            )


@pytest.mark.parametrize(
    "clamp_local,node_channel_contention",
    [(True, True), (True, False), (False, True), (False, False)],
)
def test_distance_sweep_parity_across_extensions(
    clamp_local, node_channel_contention
):
    node = NodeModel(sensitivity=3.26, intercept=90.0)
    network = TorusNetworkModel(
        dimensions=2,
        message_size=12.0,
        clamp_local=clamp_local,
        node_channel_contention=node_channel_contention,
    )
    distances = np.linspace(0.5, 60.0, 40)
    _assert_parity(node, network, distances)


@pytest.mark.parametrize("dimensions", [1, 2, 3])
def test_random_grid_parity(dimensions):
    rng = random.Random(20260806 + dimensions)
    network = TorusNetworkModel(
        dimensions=dimensions,
        message_size=rng.uniform(4.0, 32.0),
    )
    node = NodeModel(
        sensitivity=rng.uniform(0.5, 8.0),
        intercept=rng.uniform(10.0, 300.0),
    )
    distances = np.array(
        [rng.uniform(0.2, 40.0) for _ in range(60)]
    )
    _assert_parity(node, network, distances)


def test_per_lane_node_parameters_parity():
    rng = random.Random(7)
    node = NodeModel(sensitivity=3.0, intercept=80.0)
    network = TorusNetworkModel(dimensions=2, message_size=12.0)
    count = 30
    distances = np.array([rng.uniform(1.0, 20.0) for _ in range(count)])
    sensitivity = np.array([rng.uniform(0.8, 6.0) for _ in range(count)])
    intercept = np.array([rng.uniform(20.0, 200.0) for _ in range(count)])
    _assert_parity(
        node, network, distances, sensitivity=sensitivity, intercept=intercept
    )


def test_bimodal_second_moment_parity():
    node = NodeModel(sensitivity=3.26, intercept=90.0)
    network = TorusNetworkModel(
        dimensions=2,
        message_size=12.0,
        message_size_second_moment=192.0,  # the 8/24-flit protocol mix
    )
    distances = np.linspace(1.0, 30.0, 25)
    _assert_parity(node, network, distances)


def test_scalar_distance_broadcasts():
    node = NodeModel(sensitivity=2.5, intercept=60.0)
    network = TorusNetworkModel(dimensions=2, message_size=12.0)
    batch = solve_batch(node, network, 4.0)
    scalar = solve(node, network, 4.0)
    assert batch.transaction_rate.shape == (1,)
    assert batch.point(0) is not None
    assert (
        abs(float(batch.message_rate[0]) - scalar.message_rate)
        <= _TOLERANCE * scalar.message_rate
    )

"""Property-based tests for the fabrics' conservation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cut_through import CutThroughFabric
from repro.sim.message import Message, MessageKind
from repro.sim.network import TorusFabric
from repro.topology.torus import Torus


def traffic_strategy(node_count):
    pair = st.tuples(
        st.integers(0, node_count - 1),
        st.integers(0, node_count - 1),
        st.sampled_from(list(MessageKind)),
    ).filter(lambda t: t[0] != t[1])
    return st.lists(pair, min_size=1, max_size=30)


def drain(fabric, limit=60000):
    cycle = 0
    while not fabric.quiescent():
        fabric.tick(cycle)
        cycle += 1
        if cycle > limit:
            raise AssertionError("fabric failed to drain")
    return cycle


class TestFabricConservation:
    @settings(max_examples=40, deadline=None)
    @given(traffic_strategy(16))
    def test_wormhole_delivers_everything_exactly_once(self, traffic):
        torus = Torus(radix=4, dimensions=2)
        delivered = []
        fabric = TorusFabric(torus, on_delivery=delivered.append)
        messages = []
        for index, (src, dst, kind) in enumerate(traffic):
            message = Message(kind, src, dst, (0, 0), index)
            messages.append(message)
            fabric.inject(message, 0)
        drain(fabric)
        assert len(delivered) == len(messages)
        assert {w.message.uid for w in delivered} == {
            m.uid for m in messages
        }

    @settings(max_examples=40, deadline=None)
    @given(traffic_strategy(16))
    def test_cut_through_delivers_everything_exactly_once(self, traffic):
        torus = Torus(radix=4, dimensions=2)
        delivered = []
        fabric = CutThroughFabric(torus, on_delivery=delivered.append)
        messages = []
        for index, (src, dst, kind) in enumerate(traffic):
            message = Message(kind, src, dst, (0, 0), index)
            messages.append(message)
            fabric.inject(message, 0)
        drain(fabric)
        assert len(delivered) == len(messages)
        assert fabric.in_flight == 0

    @settings(max_examples=30, deadline=None)
    @given(traffic_strategy(16))
    def test_latency_at_least_zero_load(self, traffic):
        torus = Torus(radix=4, dimensions=2)
        delivered = []
        fabric = CutThroughFabric(torus, on_delivery=delivered.append)
        for index, (src, dst, kind) in enumerate(traffic):
            fabric.inject(Message(kind, src, dst, (0, 0), index), 0)
        drain(fabric)
        for transit in delivered:
            message = transit.message
            minimum = torus.distance(message.source, message.destination)
            assert message.latency >= minimum + message.flits

    @settings(max_examples=30, deadline=None)
    @given(traffic_strategy(16))
    def test_link_flits_match_route_lengths(self, traffic):
        torus = Torus(radix=4, dimensions=2)
        fabric = CutThroughFabric(torus, on_delivery=lambda t: None)
        expected = 0
        for index, (src, dst, kind) in enumerate(traffic):
            message = Message(kind, src, dst, (0, 0), index)
            expected += torus.distance(src, dst) * message.flits
            fabric.inject(message, 0)
        drain(fabric)
        assert sum(fabric.link_flits.values()) == expected

"""Property-based stress tests for the coherence protocol.

Random access scripts — including remote writes, ownership steals, and
tiny caches with eviction — run on a real machine; afterwards the
machine must satisfy the cache/directory agreement invariants whenever
the protocol is quiescent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.strategies import identity_mapping, random_mapping
from repro.sim.coherence import CacheState, DirectoryState
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.workload.scripted import ScriptedProgram


def run_machine(seed, write_fraction, remote_writes, cache_lines, mapping_seed):
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        contexts=1,
        cache_lines=cache_lines,
        seed=seed,
        warmup_network_cycles=0,
        measure_network_cycles=3000,
    )
    programs = [[
        ScriptedProgram.random_script(
            0, thread, 16, length=12, seed=seed,
            write_fraction=write_fraction, remote_writes=remote_writes,
        )
        for thread in range(16)
    ]]
    mapping = (
        identity_mapping(16)
        if mapping_seed is None
        else random_mapping(16, mapping_seed)
    )
    machine = Machine(config, mapping, programs)
    machine.run(warmup=0, measure=3000)
    return machine


def violations(machine):
    """Coherence invariants over non-busy directory entries."""
    found = []
    for controller in machine.controllers:
        for block, entry in controller.directory.items():
            if entry.busy:
                continue
            if entry.state is DirectoryState.SHARED:
                for sharer in entry.sharers:
                    if (
                        machine.controllers[sharer].cache.get(block)
                        is CacheState.MODIFIED
                    ):
                        found.append((block, "sharer holds M"))
            if entry.state is DirectoryState.MODIFIED:
                for node, other in enumerate(machine.controllers):
                    if node == entry.owner:
                        continue
                    if other.cache.get(block) is not None:
                        found.append((block, f"non-owner {node} holds copy"))
            if entry.state is DirectoryState.UNOWNED:
                for node, other in enumerate(machine.controllers):
                    if other.cache.get(block) is CacheState.MODIFIED:
                        found.append((block, "unowned but M cached"))
    return found


class TestProtocolStress:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        write_fraction=st.sampled_from([0.0, 0.2, 0.5, 0.9]),
        remote_writes=st.booleans(),
    )
    def test_random_scripts_preserve_coherence(
        self, seed, write_fraction, remote_writes
    ):
        machine = run_machine(
            seed, write_fraction, remote_writes, cache_lines=0,
            mapping_seed=None,
        )
        assert violations(machine) == []

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cache_lines=st.sampled_from([1, 2, 4]),
        mapping_seed=st.integers(0, 50),
    )
    def test_tiny_caches_with_eviction_preserve_coherence(
        self, seed, cache_lines, mapping_seed
    ):
        machine = run_machine(
            seed, write_fraction=0.5, remote_writes=True,
            cache_lines=cache_lines, mapping_seed=mapping_seed,
        )
        found = violations(machine)
        # With evictions, dir-MODIFIED vs absent-owner-copy is a legal
        # transient (writeback in flight at the cut); everything else is
        # a real violation.
        real = [v for v in found if v[1] != "owner missing"]
        assert real == []

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_transactions_conserve(self, seed):
        machine = run_machine(
            seed, write_fraction=0.3, remote_writes=True, cache_lines=0,
            mapping_seed=7,
        )
        stats = machine.stats
        # Started transactions either completed or are still outstanding.
        outstanding = sum(
            len(c._outstanding) for c in machine.controllers
        )
        completed = stats.remote_completed + stats.local_completed
        assert stats.remote_started == completed + outstanding

"""Tests for the processor/network clock-domain conversions."""

import pytest

from repro.errors import ParameterError
from repro.units import ALEWIFE_CLOCKS, EQUAL_CLOCKS, ClockDomain


class TestClockDomainConstruction:
    def test_default_is_alewife_ratio(self):
        assert ClockDomain().network_speedup == 2.0

    def test_alewife_constant_matches_paper(self):
        # "network switches are clocked twice as fast as processors"
        assert ALEWIFE_CLOCKS.network_speedup == 2.0

    def test_equal_clocks(self):
        assert EQUAL_CLOCKS.network_speedup == 1.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, -0.5])
    def test_rejects_nonpositive_speedup(self, bad):
        with pytest.raises(ParameterError):
            ClockDomain(network_speedup=bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            ALEWIFE_CLOCKS.network_speedup = 3.0


class TestConversions:
    def test_processor_cycle_lasts_speedup_network_cycles(self):
        clocks = ClockDomain(network_speedup=2.0)
        assert clocks.processor_cycle_in_network_cycles == 2.0
        assert clocks.network_cycle_in_processor_cycles == 0.5

    def test_to_network_scales_up_durations(self):
        clocks = ClockDomain(network_speedup=2.0)
        assert clocks.to_network(10.0) == 20.0

    def test_to_processor_scales_down_durations(self):
        clocks = ClockDomain(network_speedup=2.0)
        assert clocks.to_processor(20.0) == 10.0

    def test_roundtrip_identity(self):
        clocks = ClockDomain(network_speedup=1.7)
        assert clocks.to_processor(clocks.to_network(13.0)) == pytest.approx(13.0)

    def test_rate_conversion_is_inverse_of_duration_conversion(self):
        clocks = ClockDomain(network_speedup=2.0)
        # 0.1 events per processor cycle = 0.05 events per network cycle.
        assert clocks.rate_to_network(0.1) == pytest.approx(0.05)
        assert clocks.rate_to_processor(0.05) == pytest.approx(0.1)

    def test_equal_clocks_conversions_are_identity(self):
        assert EQUAL_CLOCKS.to_network(7.0) == 7.0
        assert EQUAL_CLOCKS.to_processor(7.0) == 7.0


class TestSlowed:
    def test_slowing_by_two_halves_speedup(self):
        slowed = ALEWIFE_CLOCKS.slowed(2.0)
        assert slowed.network_speedup == 1.0

    def test_table1_four_rows(self):
        # Table 1: 2x faster (base), same, 2x slower, 4x slower.
        speedups = [ALEWIFE_CLOCKS.slowed(f).network_speedup for f in (1, 2, 4, 8)]
        assert speedups == [2.0, 1.0, 0.5, 0.25]

    def test_fractional_slowdown_speeds_up(self):
        assert ALEWIFE_CLOCKS.slowed(0.5).network_speedup == 4.0

    @pytest.mark.parametrize("bad", [0.0, -2.0])
    def test_rejects_nonpositive_factor(self, bad):
        with pytest.raises(ParameterError):
            ALEWIFE_CLOCKS.slowed(bad)

"""Unit tests for the repro-bench baseline comparison logic."""

import hashlib
import json
import os

from repro.bench import BASELINE_MANIFEST, compare_rows, load_rows, main


def _tables(rows):
    return {"simulator": {(r["bench"], r["config"]): r for r in rows}}


def _row(bench, wall_s=1.0, speedup=None):
    return {
        "bench": bench,
        "config": "cfg",
        "wall_s": wall_s,
        "speedup_vs_reference": speedup,
    }


def test_no_regressions_on_identical_rows():
    rows = _tables([_row("uniform", 0.5, 1.4)])
    regressions, notes = compare_rows(rows, rows, 0.2, 0.5)
    assert regressions == []
    assert notes == []


def test_speedup_drop_beyond_threshold_flagged():
    base = _tables([_row("uniform", 0.5, 2.0)])
    fresh = _tables([_row("uniform", 0.5, 1.5)])
    regressions, _ = compare_rows(base, fresh, 0.2, 0.5)
    assert len(regressions) == 1
    assert "uniform" in regressions[0]


def test_speedup_drop_within_threshold_passes():
    base = _tables([_row("uniform", 0.5, 2.0)])
    fresh = _tables([_row("uniform", 0.5, 1.7)])
    regressions, _ = compare_rows(base, fresh, 0.2, 0.5)
    assert regressions == []


def test_wall_growth_beyond_threshold_flagged():
    base = _tables([_row("fig7", wall_s=1.0)])
    fresh = _tables([_row("fig7", wall_s=2.0)])
    regressions, _ = compare_rows(base, fresh, 0.2, 0.5)
    assert len(regressions) == 1


def test_speedup_row_ignores_wall_noise():
    # Rows carrying a speedup are judged on the speedup only; their
    # wall clock is machine-dependent and may legitimately drift.
    base = _tables([_row("uniform", wall_s=0.1, speedup=1.5)])
    fresh = _tables([_row("uniform", wall_s=5.0, speedup=1.5)])
    regressions, _ = compare_rows(base, fresh, 0.2, 0.5)
    assert regressions == []


def test_missing_and_new_rows_are_notes_not_failures():
    base = _tables([_row("gone", 1.0)])
    fresh = _tables([_row("new", 1.0)])
    regressions, notes = compare_rows(base, fresh, 0.2, 0.5)
    assert regressions == []
    assert any("gone" in note for note in notes)
    assert any("new" in note for note in notes)


def test_missing_module_is_a_note():
    base = _tables([_row("uniform", 1.0)])
    regressions, notes = compare_rows(base, {}, 0.2, 0.5)
    assert regressions == []
    assert any("not run" in note for note in notes)


def _write_bench_rows(directory, name="BENCH_simulator.json"):
    rows = [_row("uniform", 0.5, 1.4)]
    path = os.path.join(str(directory), name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle)
    return path


class TestSnapshotManifest:
    def test_snapshot_writes_provenance_manifest(self, tmp_path):
        current = tmp_path / "current"
        baselines = tmp_path / "baselines"
        current.mkdir()
        _write_bench_rows(current)
        assert main(
            [
                "snapshot",
                "--current-dir", str(current),
                "--baseline-dir", str(baselines),
            ]
        ) == 0
        manifest_path = baselines / BASELINE_MANIFEST
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["experiments"] == ["bench-snapshot"]
        assert manifest["parameter_hash"]
        digests = manifest["parameters"]["files"]
        assert set(digests) == {"BENCH_simulator.json"}
        copied = baselines / "BENCH_simulator.json"
        expected = hashlib.sha256(copied.read_bytes()).hexdigest()
        assert digests["BENCH_simulator.json"] == expected

    def test_snapshot_with_no_rows_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(
            [
                "snapshot",
                "--current-dir", str(empty),
                "--baseline-dir", str(tmp_path / "baselines"),
            ]
        ) == 2

    def test_load_rows_ignores_the_manifest(self, tmp_path):
        current = tmp_path / "current"
        baselines = tmp_path / "baselines"
        current.mkdir()
        _write_bench_rows(current)
        main(
            [
                "snapshot",
                "--current-dir", str(current),
                "--baseline-dir", str(baselines),
            ]
        )
        tables = load_rows(str(baselines))
        assert set(tables) == {"simulator"}

    def test_compare_against_own_snapshot_is_clean(self, tmp_path):
        current = tmp_path / "current"
        baselines = tmp_path / "baselines"
        current.mkdir()
        _write_bench_rows(current)
        main(
            [
                "snapshot",
                "--current-dir", str(current),
                "--baseline-dir", str(baselines),
            ]
        )
        assert main(
            [
                "compare",
                "--current-dir", str(current),
                "--baseline-dir", str(baselines),
            ]
        ) == 0

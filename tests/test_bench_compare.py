"""Unit tests for the repro-bench baseline comparison logic."""

from repro.bench import compare_rows


def _tables(rows):
    return {"simulator": {(r["bench"], r["config"]): r for r in rows}}


def _row(bench, wall_s=1.0, speedup=None):
    return {
        "bench": bench,
        "config": "cfg",
        "wall_s": wall_s,
        "speedup_vs_reference": speedup,
    }


def test_no_regressions_on_identical_rows():
    rows = _tables([_row("uniform", 0.5, 1.4)])
    regressions, notes = compare_rows(rows, rows, 0.2, 0.5)
    assert regressions == []
    assert notes == []


def test_speedup_drop_beyond_threshold_flagged():
    base = _tables([_row("uniform", 0.5, 2.0)])
    fresh = _tables([_row("uniform", 0.5, 1.5)])
    regressions, _ = compare_rows(base, fresh, 0.2, 0.5)
    assert len(regressions) == 1
    assert "uniform" in regressions[0]


def test_speedup_drop_within_threshold_passes():
    base = _tables([_row("uniform", 0.5, 2.0)])
    fresh = _tables([_row("uniform", 0.5, 1.7)])
    regressions, _ = compare_rows(base, fresh, 0.2, 0.5)
    assert regressions == []


def test_wall_growth_beyond_threshold_flagged():
    base = _tables([_row("fig7", wall_s=1.0)])
    fresh = _tables([_row("fig7", wall_s=2.0)])
    regressions, _ = compare_rows(base, fresh, 0.2, 0.5)
    assert len(regressions) == 1


def test_speedup_row_ignores_wall_noise():
    # Rows carrying a speedup are judged on the speedup only; their
    # wall clock is machine-dependent and may legitimately drift.
    base = _tables([_row("uniform", wall_s=0.1, speedup=1.5)])
    fresh = _tables([_row("uniform", wall_s=5.0, speedup=1.5)])
    regressions, _ = compare_rows(base, fresh, 0.2, 0.5)
    assert regressions == []


def test_missing_and_new_rows_are_notes_not_failures():
    base = _tables([_row("gone", 1.0)])
    fresh = _tables([_row("new", 1.0)])
    regressions, notes = compare_rows(base, fresh, 0.2, 0.5)
    assert regressions == []
    assert any("gone" in note for note in notes)
    assert any("new" in note for note in notes)


def test_missing_module_is_a_note():
    base = _tables([_row("uniform", 1.0)])
    regressions, notes = compare_rows(base, {}, 0.2, 0.5)
    assert regressions == []
    assert any("not run" in note for note in notes)

"""Tests for least-squares message-curve fitting."""

import pytest

from repro.analysis.fitting import fit_line, fit_message_curve
from repro.errors import ParameterError


class TestFitLine:
    def test_exact_line_recovered(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [3.0 * x - 5.0 for x in xs]
        fit = fit_line(xs, ys)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(-5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_r_squared_below_one(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        ys = [2.1, 3.9, 6.2, 7.8, 10.1]
        fit = fit_line(xs, ys)
        assert 0.9 < fit.r_squared < 1.0
        assert fit.slope == pytest.approx(2.0, rel=0.05)

    def test_predict(self):
        fit = fit_line([0.0, 1.0], [1.0, 3.0])
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_rejects_single_point(self):
        with pytest.raises(ParameterError):
            fit_line([1.0], [2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            fit_line([1.0, 2.0], [1.0])

    def test_rejects_degenerate_x(self):
        with pytest.raises(ParameterError):
            fit_line([2.0, 2.0], [1.0, 3.0])

    def test_flat_line_r_squared_is_one(self):
        fit = fit_line([1.0, 2.0, 3.0], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)


class TestMessageCurveFit:
    def test_sensitivity_and_intercept_signs(self):
        # Message curve T_m = s*t_m - K: fitted intercept is -K.
        points = [(t, 2.5 * t - 40.0) for t in (20.0, 30.0, 40.0, 50.0)]
        curve = fit_message_curve(points, contexts=2)
        assert curve.sensitivity == pytest.approx(2.5)
        assert curve.curve_intercept == pytest.approx(40.0)
        assert curve.contexts == 2

    def test_to_node_model(self):
        points = [(t, 2.5 * t - 40.0) for t in (20.0, 30.0, 40.0)]
        node = fit_message_curve(points).to_node_model(
            messages_per_transaction=3.2
        )
        assert node.sensitivity == pytest.approx(2.5)
        assert node.intercept == pytest.approx(40.0)
        assert node.messages_per_transaction == 3.2

    def test_to_node_model_clamps_negative_intercept(self):
        # Slightly negative measured K (noise around zero) must not crash.
        points = [(t, 2.5 * t + 1.0) for t in (20.0, 30.0, 40.0)]
        node = fit_message_curve(points).to_node_model()
        assert node.intercept == 0.0

    def test_rejects_too_few_points(self):
        with pytest.raises(ParameterError):
            fit_message_curve([(1.0, 2.0)])

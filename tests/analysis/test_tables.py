"""Tests for table rendering."""

import pytest

from repro.analysis.tables import format_number, render_series, render_table


class TestFormatNumber:
    def test_none_is_dash(self):
        assert format_number(None) == "-"

    def test_integers_unchanged(self):
        assert format_number(42) == "42"

    def test_floats_trimmed(self):
        assert format_number(3.1400001, precision=3) == "3.14"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_large_magnitudes_use_scientific(self):
        assert "e" in format_number(1.23e8) or "E" in format_number(1.23e8)

    def test_strings_pass_through(self):
        assert format_number("2x faster") == "2x faster"


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # Right-aligned cells share a column edge.
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_title_prepended(self):
        text = render_table(["h"], [(1,)], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_series_is_two_column_table(self):
        text = render_series("x", "y", [(1, 2), (3, 4)])
        assert "x" in text and "y" in text
        assert len(text.splitlines()) == 4

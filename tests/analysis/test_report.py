"""Tests for the reproduction report generator."""

import pytest

from repro.analysis.report import generate_report, write_report


class TestGenerateReport:
    def test_selected_experiments_only(self):
        text = generate_report(["table-1"], quick=True)
        assert "table-1" in text
        assert "figure-3" not in text

    def test_tables_are_fenced(self):
        text = generate_report(["table-1"], quick=True)
        assert text.count("```") >= 2

    def test_notes_become_bullets(self):
        text = generate_report(["table-1"], quick=True)
        assert "\n- " in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            generate_report(["figure-99"], quick=True)

    def test_analytic_subset_renders_fully(self):
        text = generate_report(
            ["figure-6", "figure-7", "figure-8", "table-1", "ucl-vs-nucl"],
            quick=True,
        )
        for identifier in ("figure-6", "figure-7", "figure-8", "table-1"):
            assert f"## {identifier}:" in text


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.md"
        returned = write_report(str(path), ["table-1"], quick=True)
        assert returned == str(path)
        content = path.read_text()
        assert content.startswith("# Reproduction report")
        assert "table-1" in content

"""Tests for the Section 3.3 validation pipeline (quick windows)."""

import pytest

from repro.analysis.validation import run_validation, simulate_mapping_suite
from repro.mapping.families import NamedMapping, paper_mapping_suite
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.sim.config import SimulationConfig
from repro.topology.torus import Torus


@pytest.fixture(scope="module")
def quick_config():
    return SimulationConfig(
        radix=4,
        dimensions=2,
        contexts=1,
        warmup_network_cycles=800,
        measure_network_cycles=4000,
    )


@pytest.fixture(scope="module")
def small_mappings():
    torus = Torus(radix=4, dimensions=2)
    return paper_mapping_suite(torus, adversarial_steps=800)


@pytest.fixture(scope="module")
def report(quick_config, small_mappings):
    return run_validation(quick_config, small_mappings)


class TestSimulateMappingSuite:
    def test_one_point_per_mapping(self, quick_config, small_mappings):
        points = simulate_mapping_suite(quick_config, small_mappings)
        assert len(points) == len(small_mappings)

    def test_measured_hops_track_mapping_distance(
        self, quick_config, small_mappings
    ):
        points = simulate_mapping_suite(quick_config, small_mappings)
        for named, point in zip(small_mappings, points):
            assert point.summary.mean_message_hops == pytest.approx(
                named.distance, abs=0.35
            )


class TestRunValidation:
    def test_report_shape(self, report, small_mappings):
        assert report.contexts == 1
        assert len(report.rows) == len(small_mappings)

    def test_fitted_slope_positive_and_reasonable(self, report):
        # Expected s = g/c ~ 1.5 for one context; allow a broad band for
        # the short measurement window.
        assert 0.8 < report.curve.sensitivity < 3.0

    def test_message_size_near_twelve_flits(self, report):
        assert 10.0 < report.message_size < 14.0

    def test_rate_predictions_in_band(self, report):
        # Full-length runs hold ~5-10% at one context; the quick window
        # and 16-node machine loosen it somewhat.
        assert report.mean_rate_error < 0.25
        assert report.max_rate_error < 0.45

    def test_latency_tracking(self, report):
        assert report.max_latency_error_cycles < 15.0

    def test_errors_reported_signed(self, report):
        row = report.rows[0]
        reconstructed = (
            row.predicted.message_rate - row.simulated.message_rate
        ) / row.simulated.message_rate
        assert row.rate_error == pytest.approx(reconstructed)

    def test_rejects_single_mapping(self, quick_config):
        only = [
            NamedMapping("ideal", identity_mapping(16), 1.0),
        ]
        with pytest.raises(Exception):
            run_validation(quick_config, only)

"""Tests for per-link utilization maps."""

import pytest

from repro.analysis.linkmap import (
    link_utilization,
    link_utilization_from_telemetry,
    render_link_heatmap,
)
from repro.errors import ParameterError
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.sim.config import SimulationConfig
from repro.sim.kernel import FabricKernel
from repro.sim.machine import Machine
from repro.sim.telemetry import TelemetryConfig, run_probe
from repro.topology.torus import Torus
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs


def run_machine(mapping):
    config = SimulationConfig(
        radix=4, dimensions=2, contexts=1,
        warmup_network_cycles=500, measure_network_cycles=3000,
    )
    graph = torus_neighbor_graph(4, 2)
    programs = build_programs(graph, 1, config.compute_cycles, 0.5)
    machine = Machine(config, mapping, programs)
    machine.run()
    return machine


class TestLinkUtilization:
    def test_every_physical_link_reported(self):
        torus = Torus(radix=4, dimensions=2)
        util = link_utilization({}, torus, window_cycles=100)
        # 16 nodes x 2 dims x 2 directions.
        assert len(util.per_link) == 64
        assert util.peak == 0.0

    def test_values_scale_with_window(self):
        torus = Torus(radix=4, dimensions=2)
        flits = {(0, 0, 1): 50}
        short = link_utilization(flits, torus, window_cycles=100)
        long = link_utilization(flits, torus, window_cycles=200)
        assert short.per_link[(0, 0, 1)] == pytest.approx(0.5)
        assert long.per_link[(0, 0, 1)] == pytest.approx(0.25)

    def test_baseline_subtracted(self):
        torus = Torus(radix=4, dimensions=2)
        util = link_utilization(
            {(0, 0, 1): 70}, torus, 100, baseline_flits={(0, 0, 1): 20}
        )
        assert util.per_link[(0, 0, 1)] == pytest.approx(0.5)

    def test_rejects_bad_window(self):
        with pytest.raises(ParameterError):
            link_utilization({}, Torus(4, 2), 0)

    def test_hot_factor_from_simulation(self):
        # Ideal neighbor traffic is perfectly uniform across links;
        # a random permutation concentrates load.
        ideal = run_machine(identity_mapping(16))
        scrambled = run_machine(random_mapping(16, seed=5))
        torus = Torus(4, 2)
        ideal_util = link_utilization(
            ideal.fabric.link_flits, torus, ideal.stats.window_cycles,
            baseline_flits=ideal.stats.link_flits_at_reset,
        )
        scrambled_util = link_utilization(
            scrambled.fabric.link_flits, torus,
            scrambled.stats.window_cycles,
            baseline_flits=scrambled.stats.link_flits_at_reset,
        )
        assert ideal_util.hot_factor < scrambled_util.hot_factor
        assert ideal_util.hot_factor == pytest.approx(1.0, abs=0.25)

    def test_hottest_ranking(self):
        torus = Torus(radix=4, dimensions=2)
        flits = {(0, 0, 1): 100, (5, 1, -1): 50, (9, 0, 1): 10}
        util = link_utilization(flits, torus, 100)
        top = util.hottest(2)
        assert top[0][0] == (0, 0, 1)
        assert top[1][0] == (5, 1, -1)


class TestHeatmapRendering:
    def test_grid_dimensions(self):
        torus = Torus(radix=4, dimensions=2)
        util = link_utilization({(0, 0, 1): 100}, torus, 100)
        text = render_link_heatmap(util, torus)
        assert "[+x]" in text and "[-y]" in text
        # Each of the four direction grids has 4 rows of 4 cells.
        grid_lines = [
            l for l in text.splitlines()
            if l and not l.startswith(("[", "link"))
        ]
        assert len(grid_lines) == 16
        assert all(len(l) == 4 for l in grid_lines)

    def test_hot_link_shaded_darkest(self):
        torus = Torus(radix=4, dimensions=2)
        util = link_utilization({(0, 0, 1): 100}, torus, 100)
        text = render_link_heatmap(util, torus)
        assert "@" in text

    def test_one_dimensional_torus(self):
        torus = Torus(radix=8, dimensions=1)
        util = link_utilization({(3, 0, 1): 10}, torus, 100)
        text = render_link_heatmap(util, torus)
        assert "[+x]" in text

    def test_rejects_high_dimensions(self):
        torus = Torus(radix=3, dimensions=3)
        util = link_utilization({}, torus, 100)
        with pytest.raises(ParameterError):
            render_link_heatmap(util, torus)


class TestTelemetryLinkmap:
    @staticmethod
    def probe():
        return run_probe(
            "hotspot50", radix=4, cycles=200,
            telemetry=TelemetryConfig(epoch_cycles=32),
        )

    def test_covers_every_physical_link(self):
        result = self.probe()
        torus = Torus(radix=4, dimensions=2)
        util = link_utilization_from_telemetry(result.snapshot, torus)
        assert len(util.per_link) == 16 * 4  # node * (2 dims x 2 dirs)
        assert util.window_cycles == result.total_cycles
        measured = result.summary.link_utilization()
        for key, value in measured.items():
            assert util.per_link[key] == pytest.approx(value)

    def test_accepts_summary_wrapper(self):
        result = self.probe()
        torus = Torus(radix=4, dimensions=2)
        from_summary = link_utilization_from_telemetry(result.summary, torus)
        from_dict = link_utilization_from_telemetry(result.snapshot, torus)
        assert from_summary.per_link == from_dict.per_link

    def test_heatmap_renders_from_telemetry(self):
        result = self.probe()
        torus = Torus(radix=4, dimensions=2)
        util = link_utilization_from_telemetry(result.snapshot, torus)
        text = render_link_heatmap(util, torus)
        assert "[+x]" in text and "hot factor" in text
        assert "@" in text  # some link is the peak

    def test_rejects_empty_window(self):
        torus = Torus(radix=4, dimensions=2)
        fabric = FabricKernel(torus, on_delivery=lambda worm: None)
        telemetry = fabric.attach_telemetry(TelemetryConfig())
        telemetry.finalize(0)
        with pytest.raises(ParameterError, match="empty"):
            link_utilization_from_telemetry(telemetry.snapshot(), torus)

    def test_rejects_geometry_mismatch(self):
        result = self.probe()
        with pytest.raises(ParameterError, match="geometry"):
            link_utilization_from_telemetry(
                result.snapshot, Torus(radix=8, dimensions=2)
            )

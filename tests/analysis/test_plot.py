"""Tests for ASCII plotting."""

import pytest

from repro.analysis.plot import line_plot, sparkline
from repro.errors import ParameterError


class TestSparkline:
    def test_monotone_series_renders_ramp(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            sparkline([])


class TestLinePlot:
    def test_basic_structure(self):
        text = line_plot(
            [1, 2, 3], {"a": [1, 2, 3]}, title="T", x_label="x", y_label="y"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert any("+" in line and "-" in line for line in lines)
        assert "* a" in lines[-1]

    def test_multiple_series_get_distinct_markers(self):
        text = line_plot([1, 2], {"a": [1, 2], "b": [2, 1]})
        assert "* a" in text and "+ b" in text

    def test_extremes_plotted_at_corners(self):
        text = line_plot([0, 10], {"a": [0, 10]}, width=20, height=5)
        rows = [l for l in text.splitlines() if "|" in l]
        assert rows[0].rstrip().endswith("*")   # max at top right
        assert rows[-1].split("|")[1][0] == "*"  # min at bottom left

    def test_log_axes_require_positive(self):
        with pytest.raises(ParameterError):
            line_plot([0, 1], {"a": [1, 2]}, x_log=True)
        with pytest.raises(ParameterError):
            line_plot([1, 2], {"a": [0, 2]}, y_log=True)

    def test_log_ticks_show_real_values(self):
        text = line_plot(
            [10, 1e6], {"a": [1, 50]}, x_log=True, y_log=True
        )
        assert "1e+06" in text
        assert "10" in text

    def test_mismatched_series_length_rejected(self):
        with pytest.raises(ParameterError):
            line_plot([1, 2, 3], {"a": [1, 2]})

    def test_tiny_plot_area_rejected(self):
        with pytest.raises(ParameterError):
            line_plot([1, 2], {"a": [1, 2]}, width=4, height=2)

    def test_no_series_rejected(self):
        with pytest.raises(ParameterError):
            line_plot([1, 2], {})

"""Tests for locality profiles."""

import pytest

from repro.analysis.profile import locality_profile
from repro.errors import ParameterError
from repro.experiments.alewife import alewife_system
from repro.mapping.strategies import (
    dimension_scale_mapping,
    identity_mapping,
    random_mapping,
)
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture(scope="module")
def setup():
    torus = Torus(radix=8, dimensions=2)
    graph = torus_neighbor_graph(8, 2)
    system = alewife_system(contexts=2)
    candidates = [
        ("ideal", identity_mapping(64)),
        ("scattered", dimension_scale_mapping(torus, [3, 3])),
        ("random", random_mapping(64, seed=4)),
    ]
    return system, graph, torus, candidates


class TestLocalityProfile:
    def test_sorted_best_first(self, setup):
        system, graph, torus, candidates = setup
        profile = locality_profile(system, graph, torus, candidates)
        rates = [e.transaction_rate for e in profile.entries]
        assert rates == sorted(rates, reverse=True)

    def test_ideal_wins(self, setup):
        system, graph, torus, candidates = setup
        profile = locality_profile(system, graph, torus, candidates)
        assert profile.best.name == "ideal"
        assert profile.best.distance == pytest.approx(1.0)

    def test_spread_at_least_one(self, setup):
        system, graph, torus, candidates = setup
        profile = locality_profile(system, graph, torus, candidates)
        assert profile.spread >= 1.0
        assert profile.worst.distance > profile.best.distance

    def test_relative_rate(self, setup):
        system, graph, torus, candidates = setup
        profile = locality_profile(system, graph, torus, candidates)
        assert profile.relative_rate("ideal") == pytest.approx(1.0)
        assert profile.relative_rate("random") < 1.0

    def test_relative_rate_unknown_name(self, setup):
        system, graph, torus, candidates = setup
        profile = locality_profile(system, graph, torus, candidates)
        with pytest.raises(KeyError):
            profile.relative_rate("nope")

    def test_rejects_empty_candidates(self, setup):
        system, graph, torus, _ = setup
        with pytest.raises(ParameterError):
            locality_profile(system, graph, torus, [])

    def test_rejects_dimension_mismatch(self, setup):
        system, graph, _, candidates = setup
        torus_3d = Torus(radix=4, dimensions=3)
        with pytest.raises(ParameterError):
            locality_profile(system, graph, torus_3d, candidates)

    def test_collocated_mapping_allowed(self):
        # Many-to-one mappings give distance 0; the profile clamps to a
        # positive model distance rather than failing.
        from repro.mapping.base import Mapping

        torus = Torus(radix=2, dimensions=2)
        graph = torus_neighbor_graph(2, 2)
        system = alewife_system(contexts=1)
        everyone_on_zero = Mapping(assignment=(0, 0, 0, 0), processors=4)
        profile = locality_profile(
            system, graph, torus, [("collocated", everyone_on_zero)]
        )
        assert profile.best.distance == 0.0
        assert profile.best.transaction_rate > 0

"""Tests for system comparison and the describe card."""

import pytest

from repro.analysis.compare import compare_systems
from repro.errors import ParameterError
from repro.experiments.alewife import alewife_system


class TestCompareSystems:
    def test_self_comparison_is_unity(self):
        system = alewife_system(contexts=1)
        comparison = compare_systems(system, system, [1.0, 4.0, 16.0])
        assert all(s == pytest.approx(1.0) for s in comparison.speedups)

    def test_more_contexts_win_everywhere(self):
        one = alewife_system(contexts=1)
        four = alewife_system(contexts=4)
        comparison = compare_systems(one, four, [1.0, 4.0, 16.0])
        assert all(s > 1.0 for s in comparison.speedups)

    def test_slow_network_loses_more_at_distance(self):
        base = alewife_system(contexts=1)
        slow = base.with_network_slowdown(4.0)
        comparison = compare_systems(base, slow, [1.0, 16.0])
        # Slower network always loses, and loses harder when messages
        # travel farther.
        assert all(s < 1.0 for s in comparison.speedups)
        assert comparison.speedups[1] < comparison.speedups[0]

    def test_clock_normalization(self):
        # Comparing in processor cycles: a slowed network changes the
        # candidate's clock domain; rates must still compare fairly
        # (checked by self-vs-self across the conversion).
        base = alewife_system(contexts=1)
        same_machine_other_clock = base.with_network_slowdown(1.0)
        comparison = compare_systems(base, same_machine_other_clock, [4.0])
        assert comparison.speedups[0] == pytest.approx(1.0)

    def test_render_contains_labels(self):
        one = alewife_system(contexts=1)
        two = alewife_system(contexts=2)
        text = compare_systems(
            one, two, [1.0], baseline_label="p=1", candidate_label="p=2"
        ).render()
        assert "p=1 r_t" in text and "p=2 r_t" in text
        assert "speedup" in text

    def test_rejects_empty_distances(self):
        system = alewife_system(contexts=1)
        with pytest.raises(ParameterError):
            compare_systems(system, system, [])


class TestDescribe:
    def test_card_contains_all_parameters(self):
        text = alewife_system(contexts=2).describe()
        assert "p = 2" in text
        assert "g = 3.2" in text
        assert "2-D torus" in text
        assert "B = 12" in text
        assert "s = 3.26" in text
        assert "9.78" in text  # the Eq 16 limit

    def test_extensions_flagged(self):
        from repro.experiments.alewife import alewife_validation_system

        base = alewife_system(contexts=1).describe()
        validation = alewife_validation_system(contexts=1).describe()
        assert "node-channel contention" not in base
        assert "node-channel contention" in validation

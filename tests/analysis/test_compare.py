"""Tests for system comparison and the describe card."""

import pytest

from repro.analysis.compare import (
    ContentionComparison,
    ContentionRow,
    compare_systems,
    contention_row,
)
from repro.core.network import TorusNetworkModel
from repro.errors import ParameterError
from repro.experiments.alewife import alewife_system
from repro.sim.telemetry import TelemetryConfig, TelemetrySummary, run_probe


class TestCompareSystems:
    def test_self_comparison_is_unity(self):
        system = alewife_system(contexts=1)
        comparison = compare_systems(system, system, [1.0, 4.0, 16.0])
        assert all(s == pytest.approx(1.0) for s in comparison.speedups)

    def test_more_contexts_win_everywhere(self):
        one = alewife_system(contexts=1)
        four = alewife_system(contexts=4)
        comparison = compare_systems(one, four, [1.0, 4.0, 16.0])
        assert all(s > 1.0 for s in comparison.speedups)

    def test_slow_network_loses_more_at_distance(self):
        base = alewife_system(contexts=1)
        slow = base.with_network_slowdown(4.0)
        comparison = compare_systems(base, slow, [1.0, 16.0])
        # Slower network always loses, and loses harder when messages
        # travel farther.
        assert all(s < 1.0 for s in comparison.speedups)
        assert comparison.speedups[1] < comparison.speedups[0]

    def test_clock_normalization(self):
        # Comparing in processor cycles: a slowed network changes the
        # candidate's clock domain; rates must still compare fairly
        # (checked by self-vs-self across the conversion).
        base = alewife_system(contexts=1)
        same_machine_other_clock = base.with_network_slowdown(1.0)
        comparison = compare_systems(base, same_machine_other_clock, [4.0])
        assert comparison.speedups[0] == pytest.approx(1.0)

    def test_render_contains_labels(self):
        one = alewife_system(contexts=1)
        two = alewife_system(contexts=2)
        text = compare_systems(
            one, two, [1.0], baseline_label="p=1", candidate_label="p=2"
        ).render()
        assert "p=1 r_t" in text and "p=2 r_t" in text
        assert "speedup" in text

    def test_rejects_empty_distances(self):
        system = alewife_system(contexts=1)
        with pytest.raises(ParameterError):
            compare_systems(system, system, [])


class TestDescribe:
    def test_card_contains_all_parameters(self):
        text = alewife_system(contexts=2).describe()
        assert "p = 2" in text
        assert "g = 3.2" in text
        assert "2-D torus" in text
        assert "B = 12" in text
        assert "s = 3.26" in text
        assert "9.78" in text  # the Eq 16 limit

    def test_extensions_flagged(self):
        from repro.experiments.alewife import alewife_validation_system

        base = alewife_system(contexts=1).describe()
        validation = alewife_validation_system(contexts=1).describe()
        assert "node-channel contention" not in base
        assert "node-channel contention" in validation


def probe_telemetry():
    result = run_probe(
        "uniform", radix=4, cycles=200,
        telemetry=TelemetryConfig(epoch_cycles=32),
    )
    network = TorusNetworkModel(dimensions=2, message_size=result.mean_flits)
    return result, network


class TestContentionRow:
    def test_measured_side_comes_from_link_telemetry(self):
        result, network = probe_telemetry()
        row = contention_row(
            "probe", network, result.snapshot,
            result.message_rate, result.mean_hops,
        )
        link_rho = list(result.summary.link_utilization().values())
        assert row.measured_rho_mean == pytest.approx(
            sum(link_rho) / len(link_rho)
        )
        assert row.measured_rho_peak == pytest.approx(max(link_rho))
        assert row.measured_latency == pytest.approx(
            result.summary.latency_mean()
        )
        assert row.messages == result.delivered
        assert row.hot_factor == pytest.approx(
            row.measured_rho_peak / row.measured_rho_mean
        )
        assert row.hot_factor >= 1.0

    def test_model_side_is_eq10_at_measured_operating_point(self):
        result, network = probe_telemetry()
        row = contention_row(
            "probe", network, result.snapshot,
            result.message_rate, result.mean_hops,
        )
        assert row.model_rho == pytest.approx(
            network.channel_utilization(result.message_rate, result.mean_hops)
        )
        assert row.rho_error == pytest.approx(
            row.model_rho - row.measured_rho_mean
        )
        assert row.rho_relative_error == pytest.approx(
            row.rho_error / row.measured_rho_mean
        )

    def test_accepts_summary_or_snapshot(self):
        result, network = probe_telemetry()
        from_dict = contention_row(
            "x", network, result.snapshot, result.message_rate,
            result.mean_hops,
        )
        from_summary = contention_row(
            "x", network, TelemetrySummary(result.snapshot),
            result.message_rate, result.mean_hops,
        )
        assert from_dict == from_summary

    def test_saturated_operating_point_has_no_model_latency(self):
        result, network = probe_telemetry()
        row = contention_row(
            "hot", network, result.snapshot,
            message_rate=10.0, distance=result.mean_hops,
        )
        assert row.model_latency is None
        assert row.model_rho > 0

    def test_rejects_telemetry_without_links(self):
        result, network = probe_telemetry()
        snapshot = dict(result.snapshot)
        snapshot["link_keys"] = []
        snapshot["links"] = 0
        snapshot["link_of"] = [-1] * snapshot["channels"]
        with pytest.raises(ParameterError, match="no physical links"):
            contention_row("bare", network, snapshot, 0.01, 2.0)

    def test_zero_measured_rho_degenerate_properties(self):
        row = ContentionRow(
            label="idle", message_rate=0.0, distance=1.0, model_rho=0.0,
            measured_rho_mean=0.0, measured_rho_peak=0.0,
            model_latency=None, measured_latency=None, messages=0,
        )
        assert row.rho_relative_error == 0.0
        assert row.hot_factor == 0.0


class TestContentionComparison:
    def test_render_tabulates_and_marks_saturation(self):
        result, network = probe_telemetry()
        rows = [
            contention_row(
                "16n", network, result.snapshot,
                result.message_rate, result.mean_hops,
            ),
            contention_row(
                "16n hot", network, result.snapshot, 10.0, result.mean_hops
            ),
        ]
        comparison = ContentionComparison(rows=rows)
        text = comparison.render()
        assert "rho meas" in text and "rho model" in text
        assert "16n" in text
        assert "saturated" in text  # the past-saturation model column
        assert comparison.max_rho_relative_error >= abs(
            rows[0].rho_relative_error
        )

"""The example scripts must actually run.

The analytic examples execute here end-to-end (seconds each); the
simulation-heavy ones are exercised through their underlying APIs in the
sim/experiment test suites and only checked for compilability here, to
keep the default test run fast.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "locality_gain_study.py",
    "latency_tolerance_study.py",
]

SLOW_EXAMPLES = [
    "simulator_validation.py",
    "mapping_explorer.py",
    "hotspot_contention_study.py",
    "network_traffic_atlas.py",
]


class TestExampleScripts:
    def test_inventory_is_complete(self):
        on_disk = {p.name for p in EXAMPLES.glob("*.py")}
        assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)

    @pytest.mark.parametrize("script", FAST_EXAMPLES)
    def test_fast_examples_run_clean(self, script):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip()

    @pytest.mark.parametrize("script", FAST_EXAMPLES + SLOW_EXAMPLES)
    def test_every_example_compiles(self, script, tmp_path):
        py_compile.compile(
            str(EXAMPLES / script),
            cfile=str(tmp_path / (script + "c")),
            doraise=True,
        )

    @pytest.mark.parametrize("script", FAST_EXAMPLES + SLOW_EXAMPLES)
    def test_every_example_has_a_docstring_header(self, script):
        source = (EXAMPLES / script).read_text()
        assert source.startswith("#!/usr/bin/env python3")
        assert '"""' in source.split("\n", 2)[1]

"""Tests for the additional communication graphs."""

import pytest

from repro.errors import TopologyError
from repro.mapping.evaluate import average_distance
from repro.mapping.partition import recursive_bisection_mapping
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.topology.graphs import (
    butterfly_exchange_graph,
    nine_point_stencil_graph,
    star_graph,
)
from repro.topology.torus import Torus


class TestButterflyExchange:
    def test_degree_is_log2(self):
        graph = butterfly_exchange_graph(64)
        assert all(graph.degree_out(t) == 6 for t in range(64))

    def test_edges_are_bit_flips(self):
        graph = butterfly_exchange_graph(16)
        for (src, dst) in graph.weights:
            xor = src ^ dst
            assert xor and (xor & (xor - 1)) == 0  # single bit set

    def test_symmetric(self):
        graph = butterfly_exchange_graph(16)
        for (src, dst) in graph.weights:
            assert (dst, src) in graph.weights

    @pytest.mark.parametrize("bad", [0, 1, 12, 100])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(TopologyError):
            butterfly_exchange_graph(bad)

    def test_fft_pattern_has_limited_embeddability(self):
        # A hypercube pattern cannot embed at distance ~1 in a 2-D torus:
        # even a locality-aware placement stays well above one hop,
        # unlike the stencils.
        torus = Torus(radix=8, dimensions=2)
        graph = butterfly_exchange_graph(64)
        placed = recursive_bisection_mapping(graph, torus)
        placed_distance = average_distance(graph, placed, torus)
        assert placed_distance > 1.5
        # ...but structure still beats random placement.
        random_distance = average_distance(
            graph, random_mapping(64, seed=1), torus
        )
        assert placed_distance < random_distance


class TestStar:
    def test_center_degree(self):
        graph = star_graph(16, center=3)
        assert graph.degree_out(3) == 15
        assert graph.degree_out(0) == 1

    def test_rejects_bad_center(self):
        with pytest.raises(TopologyError):
            star_graph(8, center=8)

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            star_graph(1)

    def test_average_distance_dominated_by_center_placement(self):
        torus = Torus(radix=4, dimensions=2)
        graph = star_graph(16, center=0)
        distance = average_distance(graph, identity_mapping(16), torus)
        # Mean torus distance from node 0 to everyone else (= 32/15).
        expected = sum(torus.distance(0, n) for n in range(1, 16)) / 15
        assert distance == pytest.approx(expected)


class TestNinePointStencil:
    def test_interior_degree_is_eight(self):
        graph = nine_point_stencil_graph(4, 4)
        assert graph.degree_out(5) == 8

    def test_corner_degree_is_three(self):
        graph = nine_point_stencil_graph(4, 4)
        assert graph.degree_out(0) == 3

    def test_symmetric(self):
        graph = nine_point_stencil_graph(3, 5)
        for (src, dst) in graph.weights:
            assert (dst, src) in graph.weights

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            nine_point_stencil_graph(0, 4)

    def test_row_major_placement_is_decent(self):
        # Diagonal edges cost two torus hops; straight edges one.
        torus = Torus(radix=4, dimensions=2)
        graph = nine_point_stencil_graph(4, 4)
        distance = average_distance(graph, identity_mapping(16), torus)
        assert 1.0 < distance < 1.6

"""Tests for Eq 17 and the random-traffic distance helpers."""

import pytest

from repro.errors import ParameterError
from repro.topology.distance import (
    per_dimension_random_distance,
    random_traffic_distance,
    random_traffic_distance_exact,
    random_traffic_distance_for_size,
)


class TestEq17:
    def test_paper_64_node_value(self):
        # Footnote 2: "just over four network hops" at 64 nodes.
        value = random_traffic_distance(8, 2)
        assert value == pytest.approx(1024 / 252)
        assert 4.0 < value < 4.1

    def test_thousand_processor_machine(self):
        # Section 4.2: random mapping distance "nearly a factor of 16"
        # over single-hop at ~1,000 processors (k = 32).
        assert random_traffic_distance(32, 2) == pytest.approx(
            2 * 32**3 / (4 * 1023)
        )
        assert 15.5 < random_traffic_distance(32, 2) < 16.5

    def test_million_processor_machine(self):
        # k = 1000, n = 2: d ~ n*k/4 = 500.
        assert random_traffic_distance(1000, 2) == pytest.approx(500.0, rel=1e-3)

    def test_matches_exact_enumeration_even_radix(self):
        for radix, dims in [(2, 2), (4, 2), (8, 2), (4, 3), (2, 4)]:
            assert random_traffic_distance(radix, dims) == pytest.approx(
                random_traffic_distance_exact(radix, dims)
            )

    def test_upper_bounds_exact_for_odd_radix(self):
        # Odd rings have no antipode, so Eq 17 slightly overestimates.
        for radix, dims in [(3, 2), (5, 2), (7, 3)]:
            closed = random_traffic_distance(radix, dims)
            exact = random_traffic_distance_exact(radix, dims)
            assert closed > exact
            # The overestimate shrinks with radix: ~12% at k=3, ~4% at
            # k=5, ~2% at k=7.
            assert closed == pytest.approx(exact, rel=0.15)

    def test_fractional_radix_accepted(self):
        # Section 4 sweeps treat k = N**(1/n) as continuous.
        assert random_traffic_distance(10.5, 2) > random_traffic_distance(10.0, 2)

    @pytest.mark.parametrize("bad_radix", [1.0, 0.5, 0.0, -8])
    def test_rejects_radix_at_or_below_one(self, bad_radix):
        with pytest.raises(ParameterError):
            random_traffic_distance(bad_radix, 2)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ParameterError):
            random_traffic_distance(8, 0)


class TestForSize:
    def test_consistent_with_radix_form(self):
        assert random_traffic_distance_for_size(64, 2) == pytest.approx(
            random_traffic_distance(8, 2)
        )

    def test_non_square_sizes_interpolate(self):
        d_1000 = random_traffic_distance_for_size(1000, 2)
        d_1024 = random_traffic_distance_for_size(1024, 2)
        assert d_1000 < d_1024

    def test_higher_dimensions_shorten_distance(self):
        # Section 4.2: increasing n affords shorter random distances.
        assert random_traffic_distance_for_size(
            4096, 3
        ) < random_traffic_distance_for_size(4096, 2)

    def test_rejects_sizes_at_or_below_one(self):
        with pytest.raises(ParameterError):
            random_traffic_distance_for_size(1, 2)


class TestPerDimension:
    def test_quarter_ring(self):
        assert per_dimension_random_distance(8) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            per_dimension_random_distance(0)

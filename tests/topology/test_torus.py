"""Tests for the discrete k-ary n-cube torus."""

import pytest

from repro.errors import TopologyError
from repro.topology.torus import Torus


@pytest.fixture
def alewife_torus():
    # The paper's 64-node, radix-8, 2-D machine.
    return Torus(radix=8, dimensions=2)


class TestConstruction:
    def test_node_count(self, alewife_torus):
        assert alewife_torus.node_count == 64

    def test_rejects_bad_radix(self):
        with pytest.raises(TopologyError):
            Torus(radix=0, dimensions=2)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(TopologyError):
            Torus(radix=4, dimensions=0)


class TestCoordinates:
    def test_roundtrip_all_nodes(self, alewife_torus):
        for node in alewife_torus.nodes():
            assert alewife_torus.node_at(alewife_torus.coordinates(node)) == node

    def test_dimension_zero_is_least_significant(self, alewife_torus):
        assert alewife_torus.coordinates(9) == (1, 1)
        assert alewife_torus.coordinates(8) == (0, 1)

    def test_rejects_out_of_range_node(self, alewife_torus):
        with pytest.raises(TopologyError):
            alewife_torus.coordinates(64)
        with pytest.raises(TopologyError):
            alewife_torus.coordinates(-1)

    def test_rejects_bad_coordinate_tuple(self, alewife_torus):
        with pytest.raises(TopologyError):
            alewife_torus.node_at((1,))
        with pytest.raises(TopologyError):
            alewife_torus.node_at((8, 0))


class TestDistance:
    def test_distance_to_self_is_zero(self, alewife_torus):
        assert alewife_torus.distance(13, 13) == 0

    def test_wraparound_shorter_than_direct(self, alewife_torus):
        # Positions 0 and 7 on a radix-8 ring are one hop apart.
        assert alewife_torus.ring_distance(0, 7) == 1

    def test_antipodal_ring_distance(self, alewife_torus):
        assert alewife_torus.ring_distance(0, 4) == 4

    def test_distance_is_symmetric(self, alewife_torus):
        for a, b in [(0, 63), (5, 40), (17, 18)]:
            assert alewife_torus.distance(a, b) == alewife_torus.distance(b, a)

    def test_triangle_inequality_spot_check(self, alewife_torus):
        for a, b, c in [(0, 27, 63), (3, 50, 12)]:
            assert alewife_torus.distance(a, c) <= (
                alewife_torus.distance(a, b) + alewife_torus.distance(b, c)
            )

    def test_distance_vector_magnitudes_sum_to_distance(self, alewife_torus):
        for a, b in [(0, 63), (5, 40), (17, 18), (0, 36)]:
            vector = alewife_torus.distance_vector(a, b)
            assert sum(abs(v) for v in vector) == alewife_torus.distance(a, b)

    def test_diameter(self, alewife_torus):
        assert alewife_torus.diameter() == 8
        assert Torus(radix=5, dimensions=3).diameter() == 6


class TestNeighbors:
    def test_four_neighbors_in_2d(self, alewife_torus):
        assert len(alewife_torus.neighbors(0)) == 4

    def test_neighbors_are_one_hop(self, alewife_torus):
        for neighbor in alewife_torus.neighbors(27):
            assert alewife_torus.distance(27, neighbor) == 1

    def test_neighbor_wraps(self, alewife_torus):
        # Node 7 is (7, 0); its +x neighbor wraps to (0, 0) = node 0.
        assert alewife_torus.neighbor(7, 0, 1) == 0

    def test_neighbor_relation_symmetric(self, alewife_torus):
        for node in (0, 13, 63):
            for other in alewife_torus.neighbors(node):
                assert node in alewife_torus.neighbors(other)

    def test_radix2_deduplicates(self):
        tiny = Torus(radix=2, dimensions=2)
        # +1 and -1 coincide on a 2-ring: only 2 distinct neighbors.
        assert len(tiny.neighbors(0)) == 2

    def test_rejects_bad_dimension_or_step(self, alewife_torus):
        with pytest.raises(TopologyError):
            alewife_torus.neighbor(0, 2, 1)
        with pytest.raises(TopologyError):
            alewife_torus.neighbor(0, 0, 2)


class TestEcubeRouting:
    def test_route_endpoints(self, alewife_torus):
        route = alewife_torus.ecube_route(3, 60)
        assert route[0] == 3
        assert route[-1] == 60

    def test_route_length_is_distance_plus_one(self, alewife_torus):
        for a, b in [(0, 63), (5, 40), (17, 18), (9, 9)]:
            route = alewife_torus.ecube_route(a, b)
            assert len(route) == alewife_torus.distance(a, b) + 1

    def test_route_steps_are_single_hops(self, alewife_torus):
        route = alewife_torus.ecube_route(0, 45)
        for here, there in zip(route, route[1:]):
            assert alewife_torus.distance(here, there) == 1

    def test_dimension_order(self, alewife_torus):
        # E-cube resolves dimension 0 before dimension 1: from (0,0) to
        # (2,2) the first hops move only in x.
        route = alewife_torus.ecube_route(0, alewife_torus.node_at((2, 2)))
        coords = [alewife_torus.coordinates(n) for n in route]
        assert coords[1] == (1, 0)
        assert coords[2] == (2, 0)
        assert coords[3] == (2, 1)

    def test_route_hops_match_route(self, alewife_torus):
        hops = list(alewife_torus.route_hops(3, 60))
        assert len(hops) == alewife_torus.distance(3, 60)
        # Each hop names the node the flit leaves from.
        route = alewife_torus.ecube_route(3, 60)
        assert [h[0] for h in hops] == route[:-1]


class TestAveragePairDistance:
    def test_matches_eq17_for_even_radix(self, alewife_torus):
        # Eq 17: 2*8^3 / (4*63) ~= 4.063.
        assert alewife_torus.average_pair_distance() == pytest.approx(
            2 * 8**3 / (4 * 63)
        )

    def test_matches_brute_force_small(self):
        torus = Torus(radix=4, dimensions=2)
        pairs = [
            torus.distance(a, b)
            for a in torus.nodes()
            for b in torus.nodes()
            if a != b
        ]
        assert torus.average_pair_distance() == pytest.approx(
            sum(pairs) / len(pairs)
        )

    def test_include_self_variant(self):
        torus = Torus(radix=4, dimensions=1)
        # Distances from any node: 0,1,2,1 -> mean 1.0 over k.
        assert torus.average_pair_distance(include_self=True) == pytest.approx(1.0)

    def test_single_node_has_no_pairs(self):
        with pytest.raises(TopologyError):
            Torus(radix=1, dimensions=2).average_pair_distance()

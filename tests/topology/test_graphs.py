"""Tests for communication graphs."""

import pytest

from repro.errors import TopologyError
from repro.topology.graphs import (
    CommunicationGraph,
    all_to_all_graph,
    nearest_neighbor_grid_graph,
    ring_graph,
    torus_neighbor_graph,
)


class TestCommunicationGraph:
    def test_rejects_out_of_range_edges(self):
        with pytest.raises(TopologyError):
            CommunicationGraph(threads=4, weights={(0, 4): 1.0})

    def test_rejects_self_edges(self):
        with pytest.raises(TopologyError):
            CommunicationGraph(threads=4, weights={(2, 2): 1.0})

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(TopologyError):
            CommunicationGraph(threads=4, weights={(0, 1): 0.0})

    def test_from_edges_accumulates_duplicates(self):
        graph = CommunicationGraph.from_edges(4, [(0, 1), (0, 1), (1, 2)])
        assert graph.weights[(0, 1)] == pytest.approx(2.0)
        assert graph.total_weight == pytest.approx(3.0)

    def test_out_neighbors(self):
        graph = CommunicationGraph.from_edges(4, [(0, 1), (0, 2), (3, 0)])
        assert dict(graph.out_neighbors(0)) == {1: 1.0, 2: 1.0}
        assert graph.degree_out(0) == 2
        assert graph.degree_out(1) == 0

    def test_out_neighbors_rejects_bad_thread(self):
        graph = CommunicationGraph.from_edges(4, [(0, 1)])
        with pytest.raises(TopologyError):
            list(graph.out_neighbors(7))


class TestTorusNeighborGraph:
    def test_paper_application_shape(self):
        # 64 threads, each reading 4 neighbors: 256 directed edges.
        graph = torus_neighbor_graph(8, 2)
        assert graph.threads == 64
        assert len(graph.weights) == 256

    def test_every_thread_has_degree_2n(self):
        graph = torus_neighbor_graph(8, 2)
        assert all(graph.degree_out(t) == 4 for t in range(64))

    def test_edges_are_symmetric(self):
        graph = torus_neighbor_graph(4, 2)
        for (src, dst) in graph.weights:
            assert (dst, src) in graph.weights

    def test_one_dimensional_case_is_a_ring(self):
        graph = torus_neighbor_graph(6, 1)
        ring = ring_graph(6)
        assert set(graph.weights) == set(ring.weights)


class TestOtherGraphs:
    def test_ring_edge_count(self):
        assert len(ring_graph(8).weights) == 16
        assert len(ring_graph(8, bidirectional=False).weights) == 8

    def test_ring_rejects_tiny(self):
        with pytest.raises(TopologyError):
            ring_graph(1)

    def test_all_to_all_has_no_locality_structure(self):
        graph = all_to_all_graph(5)
        assert len(graph.weights) == 20
        assert all(w == 1.0 for w in graph.weights.values())

    def test_grid_has_no_wraparound(self):
        graph = nearest_neighbor_grid_graph(3, 3)
        # Corner thread 0 talks to exactly right (1) and down (3).
        assert dict(graph.out_neighbors(0)) == {1: 1.0, 3: 1.0}

    def test_grid_edge_count(self):
        # 3x3 grid: 12 undirected adjacencies -> 24 directed edges.
        assert len(nearest_neighbor_grid_graph(3, 3).weights) == 24

    def test_grid_rejects_empty(self):
        with pytest.raises(TopologyError):
            nearest_neighbor_grid_graph(0, 3)


class TestArrayBackedGraphs:
    def test_from_arrays_matches_dict_layout(self):
        import numpy as np

        dict_graph = ring_graph(6)
        src, dst, weight = dict_graph.edge_arrays()
        array_graph = CommunicationGraph.from_arrays(6, src, dst, weight)
        assert list(array_graph.edges()) == list(dict_graph.edges())
        assert array_graph.total_weight == dict_graph.total_weight
        assert array_graph.edge_count == dict_graph.edge_count
        for thread in range(6):
            assert list(array_graph.out_neighbors(thread)) == list(
                dict_graph.out_neighbors(thread)
            )
        for ours, theirs in zip(
            array_graph.incident_csr(), dict_graph.incident_csr()
        ):
            assert np.array_equal(ours, theirs)

    def test_from_arrays_default_unit_weights(self):
        graph = CommunicationGraph.from_arrays(3, [0, 1], [1, 2])
        assert graph.total_weight == 2.0

    def test_from_arrays_rejects_bad_edges(self):
        with pytest.raises(TopologyError):
            CommunicationGraph.from_arrays(3, [0], [3])
        with pytest.raises(TopologyError):
            CommunicationGraph.from_arrays(3, [1], [1])
        with pytest.raises(TopologyError):
            CommunicationGraph.from_arrays(3, [0, 0], [1, 1])
        with pytest.raises(TopologyError):
            CommunicationGraph.from_arrays(3, [0], [1], [0.0])

    def test_large_torus_neighbor_graph_is_array_backed(self):
        import repro.topology.graphs as graphs_module

        original = graphs_module.DISTANCE_TABLE_MAX_NODES
        graphs_module.DISTANCE_TABLE_MAX_NODES = 1
        try:
            fast = torus_neighbor_graph(4, 2)
        finally:
            graphs_module.DISTANCE_TABLE_MAX_NODES = original
        slow = torus_neighbor_graph(4, 2)
        assert not fast.weights and slow.weights
        assert list(fast.edges()) == list(slow.edges())
        assert fast.total_weight == slow.total_weight

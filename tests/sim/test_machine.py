"""Whole-machine integration tests."""

import pytest

from repro.errors import SimulationError
from repro.mapping.base import Mapping
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.sim.coherence import CacheState, DirectoryState
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs


def build(contexts=1, mapping=None, switching="cut_through", radix=4, seed=5):
    config = SimulationConfig(
        radix=radix,
        dimensions=2,
        contexts=contexts,
        switching=switching,
        seed=seed,
        warmup_network_cycles=800,
        measure_network_cycles=4000,
    )
    nodes = radix * radix
    graph = torus_neighbor_graph(radix, 2)
    programs = build_programs(
        graph, contexts, config.compute_cycles, config.compute_jitter
    )
    if mapping is None:
        mapping = identity_mapping(nodes)
    return Machine(config, mapping, programs)


def coherence_violations(machine):
    """Cache/directory agreement for all non-busy directory entries."""
    violations = []
    for controller in machine.controllers:
        for block, entry in controller.directory.items():
            if entry.busy:
                continue
            if entry.state is DirectoryState.MODIFIED and entry.owner is not None:
                owner = machine.controllers[entry.owner]
                if (
                    owner.cache.get(block) is not CacheState.MODIFIED
                    and block not in owner._outstanding
                ):
                    violations.append((block, "owner not modified"))
            if entry.state is DirectoryState.SHARED:
                for sharer in entry.sharers:
                    if (
                        machine.controllers[sharer].cache.get(block)
                        is CacheState.MODIFIED
                    ):
                        violations.append((block, f"sharer {sharer} modified"))
    return violations


class TestConstruction:
    def test_rejects_non_bijective_mapping(self):
        squashed = Mapping(assignment=(0,) * 16, processors=16)
        with pytest.raises(Exception):
            build(mapping=squashed)

    def test_rejects_wrong_machine_size_mapping(self):
        with pytest.raises(SimulationError):
            build(mapping=identity_mapping(64))

    def test_rejects_wrong_instance_count(self):
        config = SimulationConfig(radix=4, dimensions=2, contexts=2)
        graph = torus_neighbor_graph(4, 2)
        programs = build_programs(graph, 1, 8, 0.5)  # one instance, not two
        with pytest.raises(SimulationError):
            Machine(config, identity_mapping(16), programs)


class TestEndToEnd:
    @pytest.mark.parametrize("switching", ["cut_through", "wormhole"])
    def test_run_produces_complete_summary(self, switching):
        summary = build(switching=switching).run()
        assert summary.messages_sent > 0
        assert summary.remote_transactions > 0
        assert summary.mean_message_latency > 0
        assert 0 < summary.channel_utilization < 1
        assert summary.mean_message_flits > 0

    def test_ideal_mapping_measures_one_hop(self):
        summary = build().run()
        assert summary.mean_message_hops == pytest.approx(1.0, abs=0.01)

    def test_random_mapping_measures_expected_distance(self):
        summary = build(mapping=random_mapping(16, seed=2)).run()
        # 4x4 torus random traffic averages ~2.1 hops; a specific random
        # permutation of the neighbor graph lands near that.
        assert 1.5 < summary.mean_message_hops < 2.8

    def test_feedback_direction(self):
        # Longer distances -> higher latency -> lower injection rate.
        near = build().run()
        far = build(mapping=random_mapping(16, seed=2)).run()
        assert far.mean_message_latency > near.mean_message_latency
        assert far.message_rate < near.message_rate

    def test_messages_per_transaction_near_paper_value(self):
        summary = build(radix=8, mapping=identity_mapping(64)).run()
        # Paper: g = 3.2 a priori; dynamic hits push it slightly lower.
        assert 2.6 < summary.messages_per_transaction < 3.4

    def test_average_flits_near_twelve(self):
        summary = build().run()
        assert 10.0 < summary.mean_message_flits < 14.0

    @pytest.mark.parametrize("switching", ["cut_through", "wormhole"])
    def test_coherence_invariants_hold_after_run(self, switching):
        machine = build(switching=switching, contexts=2)
        machine.run()
        assert coherence_violations(machine) == []

    def test_step_advances_cycle(self):
        machine = build()
        machine.step()
        machine.step()
        assert machine.cycle == 2

    def test_explicit_windows_override_config(self):
        machine = build()
        summary = machine.run(warmup=100, measure=1000)
        assert summary.window_cycles == 1000

"""Cycle-exact parity: the array kernel vs the reference fabric.

``repro.sim.network.TorusFabric`` *is* the kernel
(:class:`repro.sim.kernel.FabricKernel`); the object-based implementation
it replaced survives as :class:`repro.sim.reference.ReferenceTorusFabric`
— the executable specification.  These tests pin the kernel to the
reference cycle for cycle: same delivery cycles, same per-link flit
counts, same quiescence, on the same seeded traffic — across torus
shapes at the fabric level, and across mapping modes (replicated
instances and collocation) at the machine level.
"""

import copy
import random

import pytest

from repro.mapping.strategies import (
    block_collocation_mapping,
    identity_mapping,
    random_mapping,
)
from repro.sim.kernel import FabricKernel
from repro.sim.machine import Machine
from repro.sim.message import Message, MessageKind
from repro.sim.reference import ReferenceTorusFabric
from repro.sim.config import SimulationConfig
from repro.topology.graphs import ring_graph, torus_neighbor_graph
from repro.topology.torus import Torus
from repro.workload.synthetic import build_programs

TORI = [(8, 1), (4, 2), (8, 2), (3, 3)]


def drive_fabric(fabric_cls, radix, dimensions, seed, cycles=400, rate=0.4):
    """Seeded random traffic through one fabric; full delivery record.

    ``rate`` is the mean injection attempts per cycle (values above 1
    saturate the fabric).  Returns (deliveries, link_flits,
    quiesce_cycle).  Deliveries identify worms by injection metadata,
    never by ``Message.uid`` (a process-global counter that differs
    between the two runs).
    """
    torus = Torus(radix=radix, dimensions=dimensions)
    delivered = []
    fabric = fabric_cls(torus, on_delivery=delivered.append)
    rng = random.Random(seed)
    nodes = torus.node_count
    kinds = (MessageKind.READ_REQUEST, MessageKind.DATA_REPLY)
    tag = 0
    cycle = 0
    whole, fractional = divmod(rate, 1)
    for cycle in range(cycles):
        attempts = int(whole) + (1 if rng.random() < fractional else 0)
        for _ in range(attempts):
            source = rng.randrange(nodes)
            destination = rng.randrange(nodes)
            if source == destination:
                continue
            message = Message(
                rng.choice(kinds), source, destination, (0, 0), tag
            )
            tag += 1
            fabric.inject(message, cycle)
        fabric.tick(cycle)
    while not fabric.quiescent():
        cycle += 1
        fabric.tick(cycle)
        assert cycle < cycles + 20000, "fabric did not quiesce"
    deliveries = sorted(
        (
            worm.message.transaction,
            worm.message.injected_at,
            worm.message.delivered_at,
            worm.message.source,
            worm.message.destination,
            worm.hops,
            worm.source_wait,
        )
        for worm in delivered
    )
    return deliveries, fabric.link_flits, cycle


class TestFabricParity:
    @pytest.mark.parametrize("radix,dimensions", TORI)
    def test_random_traffic_parity(self, radix, dimensions):
        reference = drive_fabric(ReferenceTorusFabric, radix, dimensions, 7)
        kernel = drive_fabric(FabricKernel, radix, dimensions, 7)
        assert kernel[0] == reference[0]  # same worms, same cycles
        assert kernel[1] == reference[1]  # same per-link flit counts
        assert kernel[2] == reference[2]  # same quiescence cycle

    def test_saturating_traffic_parity(self):
        # High injection rate forces long queues, carried candidates,
        # and release-while-granting — the arbitration corner cases.
        reference = drive_fabric(
            ReferenceTorusFabric, 4, 2, 11, cycles=300, rate=2.5
        )
        kernel = drive_fabric(FabricKernel, 4, 2, 11, cycles=300, rate=2.5)
        assert kernel == reference


def machine_summaries(config, mapping, programs):
    """The same machine run on the kernel and on the reference fabric.

    Programs carry mutable per-run state, so each machine gets its own
    deep copy — the comparison must differ only in the fabric.
    """
    kernel = Machine(config, mapping, copy.deepcopy(programs)).run()
    reference = Machine(
        config, mapping, copy.deepcopy(programs),
        fabric_factory=ReferenceTorusFabric,
    ).run()
    return kernel, reference


class TestMachineParity:
    def test_replicated_instances_random_mapping(self):
        config = SimulationConfig(
            radix=4, dimensions=2, contexts=2, switching="wormhole",
            warmup_network_cycles=400, measure_network_cycles=2000,
        )
        graph = torus_neighbor_graph(4, 2)
        programs = build_programs(graph, 2, config.compute_cycles, 0.5)
        mapping = random_mapping(config.node_count, seed=5)
        kernel, reference = machine_summaries(config, mapping, programs)
        assert kernel.as_dict() == reference.as_dict()

    def test_replicated_instances_identity_mapping(self):
        config = SimulationConfig(
            radix=3, dimensions=3, contexts=2, switching="wormhole",
            warmup_network_cycles=300, measure_network_cycles=1500,
        )
        graph = torus_neighbor_graph(3, 3)
        programs = build_programs(graph, 2, config.compute_cycles, 0.5)
        kernel, reference = machine_summaries(
            config, identity_mapping(config.node_count), programs
        )
        assert kernel.as_dict() == reference.as_dict()

    def test_collocation_mapping(self):
        config = SimulationConfig(
            radix=4, dimensions=2, contexts=2, switching="wormhole",
            warmup_network_cycles=400, measure_network_cycles=2000,
        )
        threads = config.node_count * config.contexts
        graph = ring_graph(threads)
        programs = build_programs(graph, 1, config.compute_cycles, 0.5)
        mapping = block_collocation_mapping(threads, config.node_count)
        kernel, reference = machine_summaries(config, mapping, programs)
        assert kernel.as_dict() == reference.as_dict()

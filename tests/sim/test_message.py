"""Tests for protocol messages."""

from repro.sim.message import CONTROL_FLITS, DATA_FLITS, Message, MessageKind


class TestKinds:
    def test_data_bearing_kinds(self):
        assert MessageKind.DATA_REPLY.carries_data
        assert MessageKind.WRITEBACK.carries_data
        assert not MessageKind.READ_REQUEST.carries_data
        assert not MessageKind.INVALIDATE.carries_data

    def test_sizes(self):
        assert MessageKind.DATA_REPLY.flits == DATA_FLITS
        assert MessageKind.INVALIDATE_ACK.flits == CONTROL_FLITS

    def test_synthetic_application_average_is_twelve_flits(self):
        # Steady-state iteration traffic: 4 read requests + 4 data
        # replies + 4 invalidates + 4 acks -> mean 12 flits, the paper's B.
        kinds = (
            [MessageKind.READ_REQUEST] * 4
            + [MessageKind.DATA_REPLY] * 4
            + [MessageKind.INVALIDATE] * 4
            + [MessageKind.INVALIDATE_ACK] * 4
        )
        mean = sum(k.flits for k in kinds) / len(kinds)
        assert mean == 12.0


class TestMessage:
    def test_unique_uids(self):
        a = Message(MessageKind.FETCH, 0, 1, (0, 0), 7)
        b = Message(MessageKind.FETCH, 0, 1, (0, 0), 7)
        assert a.uid != b.uid

    def test_latency_requires_both_stamps(self):
        message = Message(MessageKind.FETCH, 0, 1, (0, 0), 7)
        assert message.latency is None
        message.injected_at = 10
        assert message.latency is None
        message.delivered_at = 35
        assert message.latency == 25

    def test_flits_delegate_to_kind(self):
        message = Message(MessageKind.DATA_REPLY, 0, 1, (0, 0), 7)
        assert message.flits == DATA_FLITS

    def test_repr_is_compact(self):
        message = Message(MessageKind.INVALIDATE, 2, 5, (0, 3), 9)
        text = repr(message)
        assert "invalidate" in text
        assert "2->5" in text

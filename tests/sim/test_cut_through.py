"""Tests for the buffered cut-through fabric."""

import pytest

from repro.errors import SimulationError
from repro.sim.cut_through import CutThroughFabric
from repro.sim.message import Message, MessageKind
from repro.topology.torus import Torus


def make_fabric(radix=8, dimensions=2):
    delivered = []
    torus = Torus(radix=radix, dimensions=dimensions)
    fabric = CutThroughFabric(torus, on_delivery=delivered.append)
    return fabric, delivered, torus


def control(source, destination, txn=0):
    return Message(MessageKind.READ_REQUEST, source, destination, (0, 0), txn)


def data(source, destination, txn=0):
    return Message(MessageKind.DATA_REPLY, source, destination, (0, 0), txn)


def run_until_quiescent(fabric, start_cycle=0, limit=20000):
    cycle = start_cycle
    while not fabric.quiescent():
        fabric.tick(cycle)
        cycle += 1
        if cycle - start_cycle > limit:
            raise AssertionError("fabric did not quiesce")
    return cycle


class TestRouting:
    def test_routes_have_no_virtual_channels(self):
        fabric, _, _ = make_fabric()
        route = fabric.build_route(6, 1)
        links = [k for k in route if k[0] == "link"]
        assert all(len(k) == 4 for k in links)

    def test_rejects_self_route(self):
        fabric, _, _ = make_fabric()
        with pytest.raises(SimulationError):
            fabric.build_route(5, 5)


class TestZeroLoadTiming:
    @pytest.mark.parametrize("destination", [1, 9, 27])
    def test_latency_is_distance_plus_flits_plus_one(self, destination):
        fabric, _, torus = make_fabric()
        message = control(0, destination)
        fabric.inject(message, 0)
        run_until_quiescent(fabric)
        assert message.latency == torus.distance(0, destination) + message.flits + 1

    def test_transit_records_hops(self):
        fabric, delivered, torus = make_fabric()
        fabric.inject(control(0, 9), 0)
        run_until_quiescent(fabric)
        assert delivered[0].hops == torus.distance(0, 9)


class TestPipelinedQueueing:
    def test_channel_held_for_service_time_only(self):
        # Two messages sharing one link: the second's extra delay is one
        # service time, not a blocking-tree amplification.
        fabric, _, _ = make_fabric()
        a = control(0, 2, txn=1)
        b = control(0, 2, txn=2)
        fabric.inject(a, 0)
        fabric.inject(b, 0)
        run_until_quiescent(fabric)
        assert b.delivered_at - a.delivered_at == pytest.approx(a.flits, abs=2)

    def test_big_messages_hold_longer(self):
        fabric, _, _ = make_fabric()
        first = data(0, 2, txn=1)
        second = control(0, 2, txn=2)
        fabric.inject(first, 0)
        fabric.inject(second, 0)
        run_until_quiescent(fabric)
        # Second waits about one DATA service time at the source.
        assert second.latency >= first.flits

    def test_blocked_message_does_not_hold_upstream_channel(self):
        # Cut-through's defining property: a message waiting for link
        # (1 -> 2) buffers at switch 1; the (0 -> 1) link frees after its
        # flits pass, so a third message can use it meanwhile.
        fabric, _, torus = make_fabric()
        blocker = data(1, 3, txn=1)       # occupies 1->2->3
        follower = data(0, 2, txn=2)      # needs 0->1 then 1->2
        bystander = control(0, 1, txn=3)  # needs only 0->1
        fabric.inject(blocker, 0)
        fabric.inject(follower, 0)
        fabric.inject(bystander, 0)
        run_until_quiescent(fabric)
        # The bystander completes long before the follower, which queues
        # behind the blocker at switch 1.
        assert bystander.delivered_at < follower.delivered_at

    def test_link_flits_accounting(self):
        fabric, _, _ = make_fabric()
        message = data(0, 3)
        fabric.inject(message, 0)
        run_until_quiescent(fabric)
        assert sum(fabric.link_flits.values()) == 3 * message.flits

    def test_in_flight_counter(self):
        fabric, _, _ = make_fabric()
        fabric.inject(control(0, 9), 0)
        assert fabric.in_flight == 1
        run_until_quiescent(fabric)
        assert fabric.in_flight == 0
        assert fabric.quiescent()

    def test_heavy_all_to_all_completes(self):
        fabric, delivered, torus = make_fabric(radix=4)
        count = 0
        for src in torus.nodes():
            for dst in torus.nodes():
                if src != dst:
                    fabric.inject(control(src, dst, txn=count), 0)
                    count += 1
        run_until_quiescent(fabric, limit=100000)
        assert len(delivered) == count

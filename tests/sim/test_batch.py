"""Tests for the lockstep batched replication engine.

The serial ``Machine`` is the bit-exactness oracle: every per-seed
summary (and telemetry snapshot) out of :class:`BatchMachine` must be
identical to the solo run for the same seed, in seed order.
"""

import copy

import pytest

from repro.errors import ParameterError, SimulationError
from repro.mapping.strategies import (
    block_collocation_mapping,
    identity_mapping,
    random_mapping,
)
from repro.sim.batch import BatchMachine, run_batch
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.telemetry import TelemetryConfig
from repro.topology.graphs import ring_graph, torus_neighbor_graph
from repro.workload.synthetic import build_programs


def small_setup(radix=4, dimensions=2, contexts=2, switching="cut_through",
                speedup=1, mapping_kind="random"):
    config = SimulationConfig(
        radix=radix, dimensions=dimensions, contexts=contexts,
        switching=switching, network_speedup=speedup,
        warmup_network_cycles=200, measure_network_cycles=800,
    )
    nodes = config.node_count
    if mapping_kind == "collocated":
        graph = ring_graph(nodes * contexts)
        programs = build_programs(
            graph, 1, config.compute_cycles, config.compute_jitter
        )
        mapping = block_collocation_mapping(nodes * contexts, nodes)
    else:
        graph = torus_neighbor_graph(radix, dimensions)
        programs = build_programs(
            graph, contexts, config.compute_cycles, config.compute_jitter
        )
        mapping = (
            identity_mapping(nodes)
            if mapping_kind == "identity"
            else random_mapping(nodes, seed=radix)
        )
    return config, mapping, programs


def serial_summaries(config, mapping, programs, seeds, telemetry=None):
    summaries = []
    for seed in seeds:
        machine = Machine(
            config.with_seed(seed), mapping, copy.deepcopy(programs)
        )
        if telemetry is not None:
            machine.attach_telemetry(telemetry)
        summaries.append(machine.run())
    return summaries


def assert_parity(batched, serial):
    assert len(batched) == len(serial)
    for got, want in zip(batched, serial):
        assert got.as_dict() == want.as_dict(), {
            key: (got.as_dict()[key], want.as_dict()[key])
            for key in want.as_dict()
            if got.as_dict()[key] != want.as_dict()[key]
        }


class TestBatchParity:
    def test_cut_through_matches_serial_per_seed(self):
        config, mapping, programs = small_setup()
        seeds = (config.seed, config.seed + 1, config.seed + 2)
        batched = run_batch(config, mapping, programs, seeds)
        assert_parity(
            batched, serial_summaries(config, mapping, programs, seeds)
        )

    def test_wormhole_matches_serial_per_seed(self):
        config, mapping, programs = small_setup(switching="wormhole")
        seeds = (config.seed, config.seed + 1)
        batched = run_batch(config, mapping, programs, seeds)
        assert_parity(
            batched, serial_summaries(config, mapping, programs, seeds)
        )

    def test_three_dimensional_identity_mapping(self):
        config, mapping, programs = small_setup(
            radix=3, dimensions=3, mapping_kind="identity"
        )
        seeds = (config.seed, config.seed + 1)
        batched = run_batch(config, mapping, programs, seeds)
        assert_parity(
            batched, serial_summaries(config, mapping, programs, seeds)
        )

    def test_network_speedup_two(self):
        config, mapping, programs = small_setup(speedup=2)
        seeds = (config.seed, config.seed + 1)
        batched = run_batch(config, mapping, programs, seeds)
        assert_parity(
            batched, serial_summaries(config, mapping, programs, seeds)
        )

    def test_collocated_threads(self):
        config, mapping, programs = small_setup(mapping_kind="collocated")
        seeds = (config.seed, config.seed + 1)
        batched = run_batch(config, mapping, programs, seeds)
        assert_parity(
            batched, serial_summaries(config, mapping, programs, seeds)
        )

    def test_telemetry_snapshots_match_serial(self):
        config, mapping, programs = small_setup()
        seeds = (config.seed, config.seed + 1)
        telemetry = TelemetryConfig(epoch_cycles=128)
        batched = run_batch(
            config, mapping, programs, seeds, telemetry=telemetry
        )
        serial = serial_summaries(
            config, mapping, programs, seeds, telemetry=telemetry
        )
        assert_parity(batched, serial)
        for got, want in zip(batched, serial):
            assert got.telemetry == want.telemetry
            assert got.telemetry is not None

    def test_programs_not_mutated(self):
        # run_batch deep-copies per replication; the caller's pristine
        # originals must come back with their cursors untouched.
        config, mapping, programs = small_setup()
        positions = [
            [program._position for program in instance]
            for instance in programs
        ]
        run_batch(config, mapping, programs, (config.seed,))
        assert positions == [
            [program._position for program in instance]
            for instance in programs
        ]


class TestEngineSelection:
    def test_engine_attribute_is_reported(self):
        config, mapping, programs = small_setup()
        machine = BatchMachine(config, mapping, programs, (config.seed,))
        assert machine.engine in ("c", "py")

    def test_forced_python_engine_matches_default(self, monkeypatch):
        config, mapping, programs = small_setup()
        seeds = (config.seed, config.seed + 1)
        default = run_batch(config, mapping, programs, seeds)
        monkeypatch.setenv("REPRO_BATCH_ENGINE", "py")
        machine = BatchMachine(config, mapping, programs, seeds)
        assert machine.engine == "py"
        assert_parity(machine.run(), default)

    def test_wormhole_uses_python_path(self):
        config, mapping, programs = small_setup(switching="wormhole")
        machine = BatchMachine(config, mapping, programs, (config.seed,))
        assert machine.engine == "py"

    def test_telemetry_uses_python_path(self):
        config, mapping, programs = small_setup()
        machine = BatchMachine(
            config, mapping, programs, (config.seed,),
            telemetry=TelemetryConfig(epoch_cycles=128),
        )
        assert machine.engine == "py"

    def test_invalid_engine_mode_rejected(self, monkeypatch):
        config, mapping, programs = small_setup()
        monkeypatch.setenv("REPRO_BATCH_ENGINE", "cuda")
        with pytest.raises(SimulationError):
            BatchMachine(config, mapping, programs, (config.seed,))


class TestValidation:
    def test_empty_seed_list_rejected(self):
        config, mapping, programs = small_setup()
        with pytest.raises(ParameterError):
            BatchMachine(config, mapping, programs, ())

    def test_run_is_single_use(self):
        config, mapping, programs = small_setup()
        machine = BatchMachine(config, mapping, programs, (config.seed,))
        machine.run()
        with pytest.raises(SimulationError):
            machine.run()

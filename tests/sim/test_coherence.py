"""Protocol-level tests for the directory coherence controller.

A tiny harness replaces the network with an in-order queue delivered
between controller ticks (messages between a fixed pair of nodes stay
FIFO, matching the e-cube fabric's ordering guarantee the protocol
relies on).
"""

import pytest

from repro.errors import ProtocolError
from repro.sim.coherence import CacheState, CoherenceController, DirectoryState
from repro.sim.config import SimulationConfig
from repro.sim.stats import MachineStats


class Harness:
    """N controllers wired through an instantly-ordered message queue."""

    def __init__(self, nodes=4, contexts=1):
        self.config = SimulationConfig(
            radix=max(2, nodes), dimensions=1, contexts=contexts
        )
        self.stats = MachineStats(nodes=nodes)
        self.stats.measuring = True
        self.queue = []
        self.controllers = [
            CoherenceController(
                node=node,
                config=self.config,
                home_of=lambda block: block[1],  # block (i, t): home = t
                send=self.queue.append,
                stats=self.stats,
            )
            for node in range(nodes)
        ]
        self.cycle = 0
        self.completions = []

    def callback(self, tag):
        def record(cycle):
            self.completions.append((tag, cycle))
        return record

    def pump(self, max_cycles=10000):
        """Tick until all controllers idle and the queue drains."""
        for _ in range(max_cycles):
            # Deliver queued messages (in order; 1-cycle transit).  The
            # queue object's identity must be preserved — controllers
            # hold a reference to its append method.
            pending = list(self.queue)
            self.queue.clear()
            for message in pending:
                message.injected_at = self.cycle
                message.delivered_at = self.cycle
                self.controllers[message.destination].deliver(message)
            self.cycle += 1
            for controller in self.controllers:
                controller.tick(self.cycle)
            if not self.queue and all(c.idle for c in self.controllers):
                return
        raise AssertionError("protocol did not quiesce")

    def read(self, node, block, tag="r"):
        self.controllers[node].request(
            block, False, self.cycle, self.callback(tag)
        )
        self.pump()

    def write(self, node, block, tag="w"):
        self.controllers[node].request(
            block, True, self.cycle, self.callback(tag)
        )
        self.pump()


BLOCK = (0, 1)  # homed at node 1


class TestReads:
    def test_remote_read_installs_shared(self):
        h = Harness()
        h.read(0, BLOCK)
        assert h.controllers[0].cache_state(BLOCK) is CacheState.SHARED
        entry = h.controllers[1].directory[BLOCK]
        assert entry.state is DirectoryState.SHARED
        assert 0 in entry.sharers

    def test_remote_read_costs_two_messages(self):
        h = Harness()
        h.read(0, BLOCK)
        assert h.stats.messages_sent == 2  # request + data reply

    def test_local_read_costs_no_messages(self):
        h = Harness()
        h.read(1, BLOCK)
        assert h.stats.messages_sent == 0
        assert h.controllers[1].cache_state(BLOCK) is CacheState.SHARED

    def test_read_of_remotely_modified_line_fetches(self):
        h = Harness()
        h.write(0, BLOCK)  # node 0 owns it modified
        h.stats.messages_sent = 0
        h.read(2, BLOCK)
        # fetch + writeback + request + reply = 4 messages
        assert h.stats.messages_sent == 4
        assert h.controllers[0].cache_state(BLOCK) is CacheState.SHARED
        assert h.controllers[2].cache_state(BLOCK) is CacheState.SHARED

    def test_read_of_home_modified_line_downgrades_home(self):
        h = Harness()
        h.write(1, BLOCK)  # home writes its own word
        assert h.controllers[1].cache_state(BLOCK) is CacheState.MODIFIED
        h.read(0, BLOCK)
        assert h.controllers[1].cache_state(BLOCK) is CacheState.SHARED
        entry = h.controllers[1].directory[BLOCK]
        assert entry.state is DirectoryState.SHARED
        assert entry.sharers == {0, 1}


class TestWrites:
    def test_local_write_with_no_sharers_is_message_free(self):
        h = Harness()
        h.write(1, BLOCK)
        assert h.stats.messages_sent == 0
        assert h.stats.local_completed == 1
        entry = h.controllers[1].directory[BLOCK]
        assert entry.state is DirectoryState.MODIFIED
        assert entry.owner == 1

    def test_owner_write_invalidates_all_sharers(self):
        # The paper's steady-state write: 2 messages per remote sharer.
        h = Harness()
        for reader in (0, 2, 3):
            h.read(reader, BLOCK)
        h.stats.messages_sent = 0
        h.write(1, BLOCK)
        assert h.stats.messages_sent == 6  # 3 invalidates + 3 acks
        for reader in (0, 2, 3):
            assert h.controllers[reader].cache_state(BLOCK) is CacheState.INVALID
        assert h.controllers[1].cache_state(BLOCK) is CacheState.MODIFIED

    def test_remote_write_takes_ownership(self):
        h = Harness()
        h.write(0, BLOCK)
        entry = h.controllers[1].directory[BLOCK]
        assert entry.state is DirectoryState.MODIFIED
        assert entry.owner == 0
        assert h.controllers[0].cache_state(BLOCK) is CacheState.MODIFIED

    def test_remote_write_steals_ownership_via_fetch_invalidate(self):
        h = Harness()
        h.write(0, BLOCK)
        h.write(2, BLOCK)
        assert h.controllers[0].cache_state(BLOCK) is CacheState.INVALID
        assert h.controllers[2].cache_state(BLOCK) is CacheState.MODIFIED
        assert h.controllers[1].directory[BLOCK].owner == 2

    def test_upgrade_write_invalidates_other_sharers_only(self):
        h = Harness()
        h.read(0, BLOCK)
        h.read(2, BLOCK)
        h.stats.messages_sent = 0
        h.write(0, BLOCK)  # node 0 upgrades S -> M
        # request + invalidate(2) + ack + data reply = 4 messages
        assert h.stats.messages_sent == 4
        assert h.controllers[2].cache_state(BLOCK) is CacheState.INVALID
        assert h.controllers[0].cache_state(BLOCK) is CacheState.MODIFIED


class TestSerialization:
    def test_concurrent_requests_serialize_at_home(self):
        h = Harness()
        h.write(0, BLOCK)
        # Two nodes request simultaneously; home must serialize.
        h.controllers[2].request(BLOCK, True, h.cycle, h.callback("w2"))
        h.controllers[3].request(BLOCK, False, h.cycle, h.callback("r3"))
        h.pump()
        assert len(h.completions) == 3  # initial write + both
        # Whoever went second still sees a coherent outcome.
        owner = h.controllers[1].directory[BLOCK]
        assert owner.state in (DirectoryState.MODIFIED, DirectoryState.SHARED)

    def test_concurrent_same_block_misses_coalesce(self):
        # MSHR-style: a second context missing on the same block rides
        # the first miss's fill — one network transaction, two wakeups.
        h = Harness()
        h.controllers[0].request(BLOCK, False, 0, h.callback("a"))
        h.controllers[0].request(BLOCK, False, 0, h.callback("b"))
        h.pump()
        tags = [tag for tag, _ in h.completions]
        assert tags == ["a", "b"]
        assert h.stats.messages_sent == 2  # request + reply, once
        assert h.stats.remote_completed == 1

    def test_write_waiter_upgrades_after_read_fill(self):
        # Read miss coalesces a write: the S fill cannot satisfy the
        # write, which re-issues as an upgrade and ends Modified.
        h = Harness()
        h.controllers[0].request(BLOCK, False, 0, h.callback("read"))
        h.controllers[0].request(BLOCK, True, 0, h.callback("write"))
        h.pump()
        tags = [tag for tag, _ in h.completions]
        assert tags == ["read", "write"]
        assert h.controllers[0].cache_state(BLOCK) is CacheState.MODIFIED
        assert h.controllers[1].directory[BLOCK].owner == 0

    def test_transactions_complete_with_latency_accounting(self):
        h = Harness()
        h.read(0, BLOCK)
        assert h.stats.remote_completed == 1
        assert h.stats.transaction_latency_total > 0


class TestStatsIntegration:
    def test_local_vs_remote_classification(self):
        h = Harness()
        h.write(1, BLOCK)   # local, no messages
        h.read(0, BLOCK)    # remote
        assert h.stats.local_completed == 1
        assert h.stats.remote_completed == 1

    def test_messages_attributed_per_node(self):
        h = Harness()
        h.read(0, BLOCK)
        assert h.stats.per_node_messages[0] == 1  # the request
        assert h.stats.per_node_messages[1] == 1  # the reply

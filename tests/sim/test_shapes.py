"""Machine-shape coverage: the simulator across topologies and clocks.

The validation runs use one shape (radix-8, 2-D, 2x clock); these tests
sweep the other supported configurations — 1-D rings, 3-D tori, odd
radices (e-cube tie-breaking), equal clocks, both fabrics — and check
the physics stays sane everywhere.
"""

import pytest

from repro.mapping.strategies import identity_mapping
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.distance import random_traffic_distance_exact
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs


def run_shape(radix, dimensions, switching="cut_through", network_speedup=2,
              contexts=1):
    config = SimulationConfig(
        radix=radix,
        dimensions=dimensions,
        switching=switching,
        network_speedup=network_speedup,
        contexts=contexts,
        warmup_network_cycles=600,
        measure_network_cycles=3000,
    )
    graph = torus_neighbor_graph(radix, dimensions)
    programs = build_programs(
        graph, contexts, config.compute_cycles, config.compute_jitter
    )
    machine = Machine(config, identity_mapping(config.node_count), programs)
    return machine.run()


class TestTopologyShapes:
    @pytest.mark.parametrize("radix,dimensions", [
        (8, 1),    # ring
        (4, 2),    # small square torus
        (3, 2),    # odd radix: e-cube tie-breaking in play
        (3, 3),    # 3-D
        (2, 4),    # hypercube-like (radix-2 in 4 dimensions)
    ])
    def test_ideal_mapping_is_single_hop_everywhere(self, radix, dimensions):
        summary = run_shape(radix, dimensions)
        assert summary.mean_message_hops == pytest.approx(1.0, abs=0.01)
        assert summary.remote_transactions > 0

    @pytest.mark.parametrize("radix,dimensions", [(8, 1), (3, 3)])
    def test_wormhole_fabric_on_other_shapes(self, radix, dimensions):
        summary = run_shape(radix, dimensions, switching="wormhole")
        assert summary.messages_sent > 0
        assert summary.mean_message_latency > summary.mean_message_flits

    def test_odd_radix_random_distance_matches_enumeration(self):
        from repro.mapping.strategies import random_mapping

        config = SimulationConfig(
            radix=3, dimensions=2, warmup_network_cycles=600,
            measure_network_cycles=4000,
        )
        graph = torus_neighbor_graph(3, 2)
        programs = build_programs(graph, 1, config.compute_cycles, 0.5)
        machine = Machine(config, random_mapping(9, seed=3), programs)
        summary = machine.run()
        # Exact odd-radix mean distance is 4/3; a specific permutation of
        # a neighbor graph lands in the same region.
        exact = random_traffic_distance_exact(3, 2)
        assert summary.mean_message_hops == pytest.approx(exact, abs=0.6)


class TestClockShapes:
    def test_equal_clocks(self):
        summary = run_shape(4, 2, network_speedup=1)
        assert summary.remote_transactions > 0

    def test_fast_network(self):
        slow = run_shape(4, 2, network_speedup=1)
        fast = run_shape(4, 2, network_speedup=4)
        # With a 4x network, transaction latency in *network* cycles is
        # larger (processor work spans more network cycles), but per
        # processor cycle the fast-network machine completes more work.
        slow_rate = slow.remote_transactions / (slow.window_cycles / 1)
        fast_rate = fast.remote_transactions / (fast.window_cycles / 4)
        assert fast_rate > slow_rate

    def test_multithreading_on_small_shape(self):
        single = run_shape(4, 2, contexts=1)
        quad = run_shape(4, 2, contexts=4)
        assert quad.remote_transactions > single.remote_transactions

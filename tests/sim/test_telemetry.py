"""Tests for the per-channel fabric telemetry layer.

Covers the accounting contract (busy flit-cycles reconcile with the
fabrics' own per-link counters), the kernel/reference telemetry parity
pin (busy matrices, depth matrices, and latency histograms bit-for-bit),
the epoch model under quiescent gaps, snapshot merging, saturation
detection, and the attachment surface on all three fabrics.
"""

import copy
import json

import numpy as np
import pytest

from repro import obs
from repro.errors import ParameterError, SimulationError
from repro.mapping.strategies import random_mapping
from repro.sim.config import SimulationConfig
from repro.sim.cut_through import CutThroughFabric
from repro.sim.kernel import FabricKernel
from repro.sim.machine import Machine
from repro.sim.message import Message, MessageKind
from repro.sim.reference import ReferenceTorusFabric
from repro.sim.telemetry import (
    LATENCY_METRIC,
    WORM_LATENCY_BUCKETS,
    FabricTelemetry,
    TelemetryConfig,
    TelemetrySummary,
    detect_saturation,
    emit_trace_counters,
    merge_snapshots,
    probe_schedule,
    run_probe,
    write_telemetry_jsonl,
)
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus
from repro.workload.synthetic import build_programs


def drive_fabric(
    fabric_cls, workload="uniform", radix=4, cycles=200, epoch=32, seed=7
):
    """Inject a probe schedule into a bare fabric and drain it."""
    torus = Torus(radix=radix, dimensions=2)
    delivered = []
    fabric = fabric_cls(torus, on_delivery=delivered.append)
    telemetry = fabric.attach_telemetry(TelemetryConfig(epoch_cycles=epoch))
    plan = probe_schedule(radix, 2, cycles, workload, seed=seed)
    cycle = 0
    for cycle, injections in enumerate(plan):
        for kind, source, destination, tag in injections:
            fabric.inject(Message(kind, source, destination, (0, 0), tag), cycle)
        fabric.tick(cycle)
    while not fabric.quiescent():
        cycle += 1
        fabric.tick(cycle)
    telemetry.finalize(cycle + 1)
    return fabric, telemetry, delivered


def machine_setup(radix=4, contexts=2, **overrides):
    config = SimulationConfig(
        radix=radix, dimensions=2, contexts=contexts,
        warmup_network_cycles=300, measure_network_cycles=1200,
        **overrides,
    )
    graph = torus_neighbor_graph(radix, 2)
    programs = build_programs(
        graph, contexts, config.compute_cycles, config.compute_jitter
    )
    mapping = random_mapping(config.node_count, seed=radix)
    return config, mapping, programs


class TestConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.epoch_cycles == 256
        assert config.latency_buckets == WORM_LATENCY_BUCKETS
        assert config.depth_threshold == 8

    def test_rejects_non_positive_epoch(self):
        with pytest.raises(ParameterError):
            TelemetryConfig(epoch_cycles=0)

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ParameterError):
            TelemetryConfig(depth_threshold=0)

    def test_as_dict_is_json_serializable(self):
        data = TelemetryConfig(epoch_cycles=64).as_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["epoch_cycles"] == 64
        assert data["latency_buckets"] == list(WORM_LATENCY_BUCKETS)


class TestAccounting:
    """Busy counters must reconcile with the fabric's own books."""

    @pytest.mark.parametrize(
        "fabric_cls", [FabricKernel, ReferenceTorusFabric, CutThroughFabric]
    )
    def test_link_busy_matches_link_flit_counters(self, fabric_cls):
        # Grouping per-channel busy totals by physical link must
        # reproduce the per-link flit counters exactly: both book the
        # message's flits at acquisition time.
        fabric, telemetry, _ = drive_fabric(fabric_cls)
        snapshot = telemetry.snapshot()
        busy = TelemetrySummary(snapshot).channel_busy_total()
        per_link = {}
        keys = snapshot["link_keys"]
        for channel, link in enumerate(snapshot["link_of"]):
            if link >= 0:
                key = tuple(keys[link])
                per_link[key] = per_link.get(key, 0) + int(busy[channel])
        flits = fabric.link_flits
        for key, total in per_link.items():
            assert total == flits.get(key, 0)

    def test_busy_matrix_sums_to_channel_totals(self):
        # finalize closes the trailing partial epoch, so nothing the
        # channels saw can be missing from the per-epoch matrix.
        _, telemetry, _ = drive_fabric(FabricKernel)
        summary = telemetry.summary()
        assert summary.busy.sum(axis=0).tolist() == telemetry.channel_flits

    def test_latency_histogram_counts_every_delivery(self):
        _, telemetry, delivered = drive_fabric(FabricKernel)
        snapshot = telemetry.snapshot()
        assert delivered
        assert snapshot["delivered"] == len(delivered)
        assert snapshot["latency"]["count"] == len(delivered)
        assert sum(snapshot["epoch_delivered"]) == len(delivered)
        assert snapshot["latency"]["sum"] > 0

    def test_channel_utilization_bounded(self):
        _, telemetry, _ = drive_fabric(FabricKernel)
        rho = telemetry.summary().channel_utilization()
        assert (rho >= 0).all()
        assert (rho <= 1.0 + 1e-9).all()

    def test_link_utilization_sums_virtual_channels(self):
        _, telemetry, _ = drive_fabric(FabricKernel)
        summary = telemetry.summary()
        per_link = summary.link_utilization()
        assert len(per_link) == summary.data["links"]
        # Total link-channel utilization mass is preserved by the VC sum.
        link_mask = np.asarray(summary.data["link_of"]) >= 0
        expected = summary.channel_utilization()[link_mask].sum()
        assert sum(per_link.values()) == pytest.approx(expected)


class TestParity:
    """Kernel and reference must produce identical telemetry."""

    @pytest.mark.parametrize("workload", ["uniform", "hotspot50"])
    def test_kernel_matches_reference_bit_for_bit(self, workload):
        kernel = run_probe(
            workload, radix=4, cycles=200,
            telemetry=TelemetryConfig(epoch_cycles=32), fabric="kernel",
        )
        reference = run_probe(
            workload, radix=4, cycles=200,
            telemetry=TelemetryConfig(epoch_cycles=32), fabric="reference",
        )
        for field in (
            "busy", "depth", "latency", "epoch_starts", "epoch_lengths",
            "epoch_delivered", "delivered", "total_cycles", "channels",
            "link_of", "link_keys",
        ):
            assert kernel.snapshot[field] == reference.snapshot[field], field
        assert kernel.delivered == reference.delivered
        assert kernel.snapshot["label"] == "kernel"
        assert reference.snapshot["label"] == "reference"

    def test_telemetry_does_not_change_results(self):
        # The instrumentation observes; it must never perturb.
        bare = run_probe("hotspot50", radix=4, cycles=200, fabric="kernel")
        kernel = FabricKernel(
            Torus(radix=4, dimensions=2), on_delivery=lambda worm: None
        )
        delivered = []
        plain = FabricKernel(
            Torus(radix=4, dimensions=2), on_delivery=delivered.append
        )
        plan = probe_schedule(4, 2, 200, "hotspot50")
        cycle = 0
        for cycle, injections in enumerate(plan):
            for kind, source, destination, tag in injections:
                plain.inject(
                    Message(kind, source, destination, (0, 0), tag), cycle
                )
            plain.tick(cycle)
        while not plain.quiescent():
            cycle += 1
            plain.tick(cycle)
        assert bare.delivered == len(delivered)
        assert bare.total_cycles == cycle + 1
        assert plain.link_flits  # both ran real traffic
        del kernel

    def test_machine_summary_identical_with_and_without_telemetry(self):
        config, mapping, programs = machine_setup()
        without = Machine(config, mapping, copy.deepcopy(programs)).run()
        machine = Machine(config, mapping, copy.deepcopy(programs))
        machine.attach_telemetry(TelemetryConfig(epoch_cycles=128))
        with_telemetry = machine.run()
        assert with_telemetry.as_dict() == without.as_dict()
        assert without.telemetry is None
        assert with_telemetry.telemetry is not None
        assert with_telemetry.telemetry["delivered"] > 0


class TestEpochModel:
    def test_epoch_geometry(self):
        _, telemetry, _ = drive_fabric(FabricKernel, cycles=200, epoch=32)
        snapshot = telemetry.snapshot()
        starts = snapshot["epoch_starts"]
        lengths = snapshot["epoch_lengths"]
        assert starts[0] == 0
        for previous, current in zip(starts, starts[1:]):
            assert current > previous
        assert all(1 <= length <= 32 for length in lengths)
        assert starts[-1] + lengths[-1] == snapshot["total_cycles"]

    def test_quiescent_gap_closes_intermediate_epochs(self):
        # One worm, then silence: the quiescent fast-forward must still
        # close every epoch the idle cycles span, with zero busy deltas.
        torus = Torus(radix=4, dimensions=2)
        fabric = FabricKernel(torus, on_delivery=lambda worm: None)
        telemetry = fabric.attach_telemetry(TelemetryConfig(epoch_cycles=16))
        fabric.inject(
            Message(MessageKind.READ_REQUEST, 0, 1, (0, 0), 0), 0
        )
        for cycle in range(101):
            fabric.tick(cycle)
        telemetry.finalize(101)
        snapshot = telemetry.snapshot()
        # Boundaries at 16, 32, ..., 96 plus the partial [96, 101).
        assert snapshot["epoch_starts"] == [0, 16, 32, 48, 64, 80, 96]
        assert snapshot["epoch_lengths"] == [16, 16, 16, 16, 16, 16, 5]
        busy = np.asarray(snapshot["busy"])
        assert busy[0].sum() > 0  # the worm's grants
        assert busy[2:].sum() == 0  # quiescent epochs saw nothing
        assert snapshot["delivered"] == 1

    def test_finalize_is_idempotent(self):
        _, telemetry, _ = drive_fabric(FabricKernel)
        before = telemetry.snapshot()
        telemetry.finalize(before["total_cycles"] + 500)
        assert telemetry.snapshot() == before

    def test_finalize_folds_latency_into_registry(self):
        registered = obs.REGISTRY.get(LATENCY_METRIC)
        baseline = registered.count if registered is not None else 0
        _, telemetry, delivered = drive_fabric(FabricKernel)
        histogram = obs.REGISTRY.get(LATENCY_METRIC)
        assert histogram is not None
        assert histogram.count == baseline + len(delivered)

    def test_snapshot_before_finalize_raises(self):
        torus = Torus(radix=4, dimensions=2)
        fabric = FabricKernel(torus, on_delivery=lambda worm: None)
        telemetry = fabric.attach_telemetry(TelemetryConfig())
        with pytest.raises(SimulationError):
            telemetry.snapshot()


class TestAttachment:
    def test_attach_twice_raises(self):
        torus = Torus(radix=4, dimensions=2)
        fabric = FabricKernel(torus, on_delivery=lambda worm: None)
        fabric.attach_telemetry(TelemetryConfig())
        with pytest.raises(SimulationError):
            fabric.attach_telemetry(TelemetryConfig())

    @pytest.mark.parametrize("switching", ["cut_through", "wormhole"])
    def test_machine_attach_covers_both_switch_modes(self, switching):
        config, mapping, programs = machine_setup(switching=switching)
        machine = Machine(config, mapping, programs)
        instrumentation = machine.attach_telemetry(
            TelemetryConfig(epoch_cycles=128)
        )
        assert isinstance(instrumentation, FabricTelemetry)
        summary = machine.run(warmup=100, measure=400)
        assert summary.telemetry is not None
        assert summary.telemetry["total_cycles"] == 500
        expected = "cut_through" if switching == "cut_through" else "kernel"
        assert summary.telemetry["label"] == expected

    def test_machine_rejects_uninstrumentable_fabric(self):
        class BareFabric:
            def __init__(self, torus, on_delivery):
                self.link_flits = {}

        config, mapping, programs = machine_setup()
        machine = Machine(
            config, mapping, programs, fabric_factory=BareFabric
        )
        with pytest.raises(SimulationError, match="telemetry"):
            machine.attach_telemetry(TelemetryConfig())

    def test_summary_as_dict_excludes_telemetry(self):
        # The replication aggregator averages scalars; the structured
        # snapshot must never leak into that path.
        config, mapping, programs = machine_setup()
        machine = Machine(config, mapping, programs)
        machine.attach_telemetry(TelemetryConfig(epoch_cycles=128))
        summary = machine.run(warmup=100, measure=400)
        assert "telemetry" not in summary.as_dict()


class TestMerge:
    def test_merge_adds_busy_and_peaks_depth(self):
        _, first, _ = drive_fabric(FabricKernel, seed=7)
        _, second, _ = drive_fabric(FabricKernel, seed=8)
        a, b = first.snapshot(), second.snapshot()
        merged = merge_snapshots([a, b])
        epochs = max(len(a["busy"]), len(b["busy"]))

        def padded(rows):
            matrix = np.zeros((epochs, a["channels"]), dtype=np.int64)
            matrix[: len(rows)] = np.asarray(rows)
            return matrix

        assert np.array_equal(
            np.asarray(merged["busy"]), padded(a["busy"]) + padded(b["busy"])
        )
        assert np.array_equal(
            np.asarray(merged["depth"]),
            np.maximum(padded(a["depth"]), padded(b["depth"])),
        )
        assert merged["delivered"] == a["delivered"] + b["delivered"]
        assert merged["total_cycles"] == a["total_cycles"] + b["total_cycles"]
        assert merged["latency"]["count"] == (
            a["latency"]["count"] + b["latency"]["count"]
        )
        assert merged["latency"]["counts"] == [
            x + y for x, y in zip(a["latency"]["counts"], b["latency"]["counts"])
        ]
        assert merged["label"] == "merged[2x kernel]"

    def test_merge_of_one_keeps_the_numbers(self):
        _, telemetry, _ = drive_fabric(FabricKernel)
        snapshot = telemetry.snapshot()
        merged = merge_snapshots([snapshot])
        assert merged["busy"] == snapshot["busy"]
        assert merged["delivered"] == snapshot["delivered"]

    def test_merge_rejects_empty(self):
        with pytest.raises(ParameterError):
            merge_snapshots([])

    def test_merge_rejects_mismatched_geometry(self):
        _, a, _ = drive_fabric(FabricKernel, radix=4)
        _, b, _ = drive_fabric(FabricKernel, radix=8, cycles=50)
        with pytest.raises(ParameterError, match="disagree"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_rejects_mismatched_epoch_length(self):
        _, a, _ = drive_fabric(FabricKernel, epoch=32)
        _, b, _ = drive_fabric(FabricKernel, epoch=64)
        with pytest.raises(ParameterError, match="epoch_cycles"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_rejects_mismatched_latency_buckets(self):
        _, a, _ = drive_fabric(FabricKernel)
        first, second = a.snapshot(), a.snapshot()
        second["latency"] = dict(second["latency"])
        second["latency"]["buckets"] = [1, 2, 3]
        second["latency"]["counts"] = [0, 0, 0, 0]
        with pytest.raises(ParameterError, match="latency buckets"):
            merge_snapshots([first, second])


class TestSummaryReads:
    def test_rejects_unknown_snapshot_version(self):
        _, telemetry, _ = drive_fabric(FabricKernel)
        snapshot = telemetry.snapshot()
        snapshot["version"] = 999
        with pytest.raises(ParameterError, match="version"):
            TelemetrySummary(snapshot)

    def test_latency_mean_and_quantiles(self):
        _, telemetry, delivered = drive_fabric(FabricKernel)
        summary = telemetry.summary()
        latencies = [
            worm.message.delivered_at - worm.message.injected_at
            for worm in delivered
        ]
        assert summary.latency_mean() == pytest.approx(
            sum(latencies) / len(latencies)
        )
        median = summary.latency_quantile(0.5)
        p99 = summary.latency_quantile(0.99)
        assert median is not None and p99 is not None
        assert median <= p99
        # The covering bucket's bound is >= the true quantile.
        latencies.sort()
        assert median >= latencies[(len(latencies) - 1) // 2]

    def test_latency_quantile_validates_range(self):
        _, telemetry, _ = drive_fabric(FabricKernel)
        with pytest.raises(ParameterError):
            telemetry.summary().latency_quantile(1.5)

    def test_empty_window_reads_as_zeros(self):
        torus = Torus(radix=4, dimensions=2)
        fabric = FabricKernel(torus, on_delivery=lambda worm: None)
        telemetry = fabric.attach_telemetry(TelemetryConfig())
        telemetry.finalize(0)
        summary = telemetry.summary()
        assert summary.epochs == 0
        assert summary.channel_busy_total().sum() == 0
        assert summary.channel_utilization().sum() == 0.0
        assert summary.latency_mean() is None
        assert summary.latency_quantile(0.5) is None
        assert summary.max_depth_per_epoch().size == 0
        assert summary.saturated_extent_per_epoch(1).size == 0


class TestSaturation:
    def test_tree_saturation_workload_saturates(self):
        result = run_probe(
            "tree_saturation", radix=4, cycles=300,
            telemetry=TelemetryConfig(epoch_cycles=32),
        )
        report = result.saturation
        assert report.saturated
        assert report.onset_epoch is not None
        summary = result.summary
        starts = summary.epoch_starts
        lengths = summary.data["epoch_lengths"]
        assert report.onset_cycle == (
            starts[report.onset_epoch] + lengths[report.onset_epoch]
        )
        assert report.peak_extent >= 1
        assert "onset" in report.render()
        assert report.as_dict()["saturated"] is True

    def test_light_traffic_does_not_saturate(self):
        result = run_probe(
            "uniform", radix=4, cycles=200,
            telemetry=TelemetryConfig(epoch_cycles=32, depth_threshold=64),
        )
        report = result.saturation
        assert not report.saturated
        assert report.onset_epoch is None and report.onset_cycle is None
        assert "no tree saturation" in report.render()

    def test_threshold_override_and_validation(self):
        result = run_probe(
            "tree_saturation", radix=4, cycles=300,
            telemetry=TelemetryConfig(epoch_cycles=32),
        )
        relaxed = detect_saturation(result.summary, threshold=10_000)
        assert not relaxed.saturated
        with pytest.raises(ParameterError):
            detect_saturation(result.summary, threshold=0)


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        _, telemetry, _ = drive_fabric(FabricKernel)
        snapshot = telemetry.snapshot()
        path = write_telemetry_jsonl(snapshot, str(tmp_path / "t.jsonl"))
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        header, *body = lines
        assert header["kind"] == "telemetry"
        assert header["channels"] == snapshot["channels"]
        epochs = [line for line in body if line["kind"] == "epoch"]
        assert len(epochs) == len(snapshot["busy"])
        assert epochs[0]["busy"] == snapshot["busy"][0]
        assert body[-1]["kind"] == "latency"
        assert body[-1]["count"] == snapshot["latency"]["count"]

    def test_trace_counters_no_op_when_disabled(self):
        _, telemetry, _ = drive_fabric(FabricKernel)
        obs.disable()
        assert emit_trace_counters(telemetry.snapshot()) == 0

    def test_trace_counters_emit_per_epoch(self):
        _, telemetry, _ = drive_fabric(FabricKernel)
        snapshot = telemetry.snapshot()
        enabled_before = obs.is_enabled()
        obs.enable(fresh=True)
        try:
            emitted = emit_trace_counters(snapshot, prefix="probe")
            assert emitted == len(snapshot["busy"])
            events = obs.trace().chrome_trace_events()
            counters = [e for e in events if e["ph"] == "C"]
            assert len(counters) == emitted
            assert counters[0]["name"] == "probe.telemetry"
            assert set(counters[0]["args"]) == {
                "mean_link_rho", "max_queue_depth", "delivered",
            }
        finally:
            obs.reset()
            if not enabled_before:
                obs.disable()


class TestProbe:
    def test_probe_schedule_rejects_unknown_workload(self):
        with pytest.raises(ParameterError, match="unknown workload"):
            probe_schedule(4, 2, 10, "bogus")

    def test_probe_schedule_is_deterministic(self):
        assert probe_schedule(4, 2, 50, "hotspot50", seed=3) == probe_schedule(
            4, 2, 50, "hotspot50", seed=3
        )

    def test_run_probe_rejects_unknown_fabric(self):
        with pytest.raises(ParameterError, match="unknown fabric"):
            run_probe("uniform", radix=4, cycles=10, fabric="quantum")

    def test_probe_result_carries_traffic_parameters(self):
        result = run_probe(
            "uniform", radix=4, cycles=200,
            telemetry=TelemetryConfig(epoch_cycles=32),
        )
        assert result.injected >= result.delivered > 0
        assert result.mean_hops > 0
        assert result.mean_flits > 0
        assert result.message_rate == pytest.approx(
            result.delivered / (result.total_cycles * 16)
        )
        assert result.total_cycles >= result.scheduled_cycles

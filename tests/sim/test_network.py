"""Tests for the rigid-worm wormhole fabric."""

import pytest

from repro.errors import SimulationError
from repro.sim.message import Message, MessageKind
from repro.sim.network import TorusFabric
from repro.topology.torus import Torus


def make_fabric(radix=8, dimensions=2):
    delivered = []
    torus = Torus(radix=radix, dimensions=dimensions)
    fabric = TorusFabric(torus, on_delivery=delivered.append)
    return fabric, delivered, torus


def control(source, destination, txn=0):
    return Message(MessageKind.READ_REQUEST, source, destination, (0, 0), txn)


def run_until_quiescent(fabric, start_cycle=0, limit=10000):
    cycle = start_cycle
    while not fabric.quiescent():
        fabric.tick(cycle)
        cycle += 1
        if cycle - start_cycle > limit:
            raise AssertionError("fabric did not quiesce")
    return cycle


class TestRoutes:
    def test_route_has_injection_and_ejection(self):
        fabric, _, torus = make_fabric()
        route = fabric.build_route(0, 9)
        assert route[0] == ("inj", 0)
        assert route[-1] == ("ej", 9)
        assert len(route) == torus.distance(0, 9) + 2

    def test_rejects_self_route(self):
        fabric, _, _ = make_fabric()
        with pytest.raises(SimulationError):
            fabric.build_route(3, 3)

    def test_dateline_vc_assignment(self):
        fabric, _, _ = make_fabric()
        # Node 6 -> node 1 in x: route 6 -> 7 -> 0 -> 1 wraps at 7 -> 0.
        route = fabric.build_route(6, 1)
        links = [k for k in route if k[0] == "link"]
        vcs = [k[4] for k in links]
        assert vcs == [0, 0, 1]  # VC switches after crossing the dateline

    def test_no_wrap_stays_on_vc0(self):
        fabric, _, _ = make_fabric()
        route = fabric.build_route(0, 3)
        assert all(k[4] == 0 for k in route if k[0] == "link")

    def test_vc_resets_per_dimension(self):
        fabric, _, torus = make_fabric()
        # 6 -> 1 in x (wraps), then some hops in y (must restart at VC 0).
        destination = torus.node_at((1, 2))
        route = fabric.build_route(6, destination)
        y_links = [k for k in route if k[0] == "link" and k[2] == 1]
        assert y_links and y_links[0][4] == 0


class TestZeroLoadTiming:
    @pytest.mark.parametrize("destination", [1, 9, 27])
    def test_latency_is_distance_plus_flits(self, destination):
        fabric, delivered, torus = make_fabric()
        message = control(0, destination)
        fabric.inject(message, 0)
        run_until_quiescent(fabric)
        assert len(delivered) == 1
        expected = torus.distance(0, destination) + message.flits
        assert message.latency == expected

    def test_hops_and_wait_recorded(self):
        fabric, delivered, torus = make_fabric()
        fabric.inject(control(0, 9), 0)
        run_until_quiescent(fabric)
        worm = delivered[0]
        assert worm.hops == torus.distance(0, 9)
        assert worm.source_wait == 0


class TestContention:
    def test_source_serialization(self):
        # Two messages from one node: the second waits a full message
        # time at the injection channel.
        fabric, delivered, _ = make_fabric()
        first, second = control(0, 9, txn=1), control(0, 9, txn=2)
        fabric.inject(first, 0)
        fabric.inject(second, 0)
        run_until_quiescent(fabric)
        assert second.latency >= first.latency + first.flits - 1
        worm_by_uid = {w.message.uid: w for w in delivered}
        assert worm_by_uid[second.uid].source_wait >= first.flits - 1

    def test_disjoint_paths_do_not_interact(self):
        fabric, _, torus = make_fabric()
        a = control(0, 1, txn=1)
        b = control(18, 19, txn=2)
        fabric.inject(a, 0)
        fabric.inject(b, 0)
        run_until_quiescent(fabric)
        assert a.latency == 1 + a.flits
        assert b.latency == 1 + b.flits

    def test_shared_channel_fifo_order(self):
        # Both messages need the same first link (node 0 -> node 1).
        fabric, _, _ = make_fabric()
        a = control(0, 2, txn=1)
        b = control(0, 1, txn=2)
        fabric.inject(a, 0)
        fabric.inject(b, 0)
        run_until_quiescent(fabric)
        assert a.delivered_at < b.delivered_at

    def test_link_flit_accounting(self):
        fabric, _, _ = make_fabric()
        message = control(0, 2)  # two hops in x
        fabric.inject(message, 0)
        run_until_quiescent(fabric)
        assert sum(fabric.link_flits.values()) == 2 * message.flits

    def test_many_messages_all_delivered(self):
        fabric, delivered, torus = make_fabric(radix=4)
        count = 0
        for src in torus.nodes():
            for dst in torus.nodes():
                if src != dst and torus.distance(src, dst) <= 2:
                    fabric.inject(control(src, dst, txn=count), 0)
                    count += 1
        run_until_quiescent(fabric, limit=50000)
        assert len(delivered) == count
        assert fabric.delivered_count == count


class TestTorusWraparoundSafety:
    def test_heavy_ring_traffic_does_not_deadlock(self):
        # All nodes on one ring send 3 hops forward simultaneously —
        # the classic torus-deadlock pattern the dateline VCs break.
        fabric, delivered, torus = make_fabric(radix=8, dimensions=1)
        messages = []
        for lap in range(3):
            for src in torus.nodes():
                message = control(src, (src + 3) % 8, txn=lap)
                messages.append(message)
                fabric.inject(message, 0)
        run_until_quiescent(fabric, limit=100000)
        assert len(delivered) == len(messages)

"""Tests for SimulationConfig validation and derived quantities."""

import pytest

from repro.errors import ParameterError
from repro.sim.config import SimulationConfig


class TestValidation:
    def test_defaults_are_alewife_like(self):
        config = SimulationConfig()
        assert config.radix == 8
        assert config.dimensions == 2
        assert config.network_speedup == 2
        assert config.switch_cycles == 11
        assert config.switching == "cut_through"

    @pytest.mark.parametrize("field,value", [
        ("radix", 1),
        ("dimensions", 0),
        ("network_speedup", 0),
        ("contexts", 0),
        ("switch_cycles", -1),
        ("compute_cycles", 0),
        ("compute_jitter", 1.0),
        ("compute_jitter", -0.1),
        ("request_cycles", -1),
        ("memory_cycles", -2),
        ("warmup_network_cycles", -1),
        ("measure_network_cycles", 0),
        ("switching", "magic"),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ParameterError):
            SimulationConfig(**{field: value})


class TestDerived:
    def test_node_count(self):
        assert SimulationConfig(radix=4, dimensions=3).node_count == 64

    def test_total_cycles(self):
        config = SimulationConfig(
            warmup_network_cycles=100, measure_network_cycles=200
        )
        assert config.total_network_cycles == 300

    def test_to_network_uses_speedup(self):
        assert SimulationConfig(network_speedup=2).to_network(5) == 10

    def test_with_contexts(self):
        assert SimulationConfig().with_contexts(4).contexts == 4

    def test_with_seed(self):
        assert SimulationConfig().with_seed(7).seed == 7

    def test_scaled_for_testing_shrinks_windows(self):
        scaled = SimulationConfig().scaled_for_testing()
        assert scaled.total_network_cycles < SimulationConfig().total_network_cycles

"""The kernel's arithmetic route fast path and quiescent fast-forward.

``FabricKernel._route_ids`` computes channel ids directly from node
arithmetic (the light-traffic optimization); ``build_route`` — key
tuples resolved through the channel index — stays alive as its
executable specification.  These tests pin the two channel-for-channel
across shapes, directions, datelines, and ties, and check the
quiescent early-exit changes nothing observable.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import FabricKernel
from repro.sim.message import Message, MessageKind
from repro.topology.torus import Torus

SHAPES = [(2, 1), (2, 3), (3, 2), (4, 2), (5, 1), (5, 3), (8, 2), (6, 2), (4, 3)]


def _kernel(radix, dimensions):
    return FabricKernel(
        Torus(radix=radix, dimensions=dimensions), on_delivery=lambda r: None
    )


class TestRouteIdParity:
    @pytest.mark.parametrize("radix,dimensions", SHAPES)
    def test_all_pairs_match_key_built_routes(self, radix, dimensions):
        kernel = _kernel(radix, dimensions)
        index = kernel._channel_index
        count = kernel.torus.node_count
        step = 1 if count <= 128 else count // 97
        for source in range(0, count, step):
            for destination in range(count):
                if source == destination:
                    continue
                expected = [
                    index[key]
                    for key in kernel.build_route(source, destination)
                ]
                assert kernel._route_ids(source, destination) == expected

    def test_self_route_rejected(self):
        kernel = _kernel(4, 2)
        with pytest.raises(SimulationError):
            kernel._route_ids(3, 3)

    def test_dateline_vc_switch(self):
        # A wrapping hop must carry VC 0 on the wrap itself and VC 1
        # afterwards — exactly the reference's dateline rule.
        kernel = _kernel(5, 1)
        index = kernel._channel_index
        ids = kernel._route_ids(4, 1)  # 4 -> 0 wraps, then 0 -> 1
        assert ids == [
            index[("inj", 4)],
            index[("link", 4, 0, 1, 0)],
            index[("link", 0, 0, 1, 1)],
            index[("ej", 1)],
        ]


class TestQuiescentFastForward:
    def test_idle_ticks_are_noops(self):
        delivered = []
        kernel = FabricKernel(
            Torus(radix=4, dimensions=2), on_delivery=delivered.append
        )
        for cycle in range(100):
            kernel.tick(cycle)
        assert kernel.quiescent()
        assert kernel._stall_cycles == 0

    def test_traffic_after_idle_still_delivers(self):
        delivered = []
        kernel = FabricKernel(
            Torus(radix=4, dimensions=2), on_delivery=delivered.append
        )
        for cycle in range(50):
            kernel.tick(cycle)
        kernel.inject(
            Message(MessageKind.READ_REQUEST, 0, 5, (0, 0), 0), cycle=50
        )
        cycle = 50
        while not kernel.quiescent():
            kernel.tick(cycle)
            cycle += 1
        assert len(delivered) == 1
        assert delivered[0].hops == 2
        for idle in range(cycle, cycle + 20):
            kernel.tick(idle)
        assert kernel.quiescent()

    def test_stall_counter_resets_when_idle(self):
        kernel = FabricKernel(
            Torus(radix=4, dimensions=2),
            on_delivery=lambda r: None,
            stall_limit=5,
        )
        # Idle ticks must never accumulate toward the stall limit.
        for cycle in range(20):
            kernel.tick(cycle)
        assert kernel._stall_cycles == 0

"""Fuzz the C core's CPython-set-order emulation against real sets.

The batch core replays the directory's sharer bookkeeping in C, and the
protocol's invalidation fan-out order is the *iteration order* of a
CPython ``set`` of small ints — a function of the open-addressing table
(perturb probing, last-dummy-wins slot reuse, growth schedule).  Bit
parity with the serial simulator therefore rests on the emulation
matching CPython exactly, which this fuzz pins over add / discard /
contains / iteration and the protocol-shaped copy-then-discard pattern.
"""

import random

import pytest

from repro.sim import batchcore

loaded = batchcore.load()
pytestmark = pytest.mark.skipif(
    loaded is None,
    reason=f"batch core unavailable: {batchcore.load_failure()}",
)


def run_case(lib, ffi, rng, max_key, n_ops):
    ref = set()
    cs = lib.ts_new()
    out = ffi.new("long long[]", 8192)
    try:
        for _ in range(n_ops):
            op = rng.random()
            key = rng.randrange(max_key)
            if op < 0.7:
                ref.add(key)
                lib.ts_add(cs, key)
            elif op < 0.9:
                ref.discard(key)
                lib.ts_discard(cs, key)
            else:
                assert (key in ref) == bool(lib.ts_contains(cs, key))
            assert len(ref) == lib.ts_len(cs)
            count = lib.ts_items(cs, out)
            assert [out[i] for i in range(count)] == list(ref)
        # Protocol-shaped usage: the sharers of a block are copied into
        # a fresh set minus the requester, then one member is discarded
        # (the owner ack) — both sides must iterate identically after.
        excluded = rng.randrange(max_key)
        expected = {member for member in ref if member != excluded}
        copy = lib.ts_new()
        count = lib.ts_items(cs, out)
        for i in range(count):
            if out[i] != excluded:
                lib.ts_add(copy, out[i])
        dropped = rng.randrange(max_key)
        expected.discard(dropped)
        lib.ts_discard(copy, dropped)
        count = lib.ts_items(copy, out)
        assert [out[i] for i in range(count)] == list(expected)
        lib.ts_free(copy)
    finally:
        lib.ts_free(cs)


def test_set_emulation_matches_cpython_iteration_order():
    ffi, lib = loaded
    rng = random.Random(20260807)
    for max_key in (4, 8, 16, 64, 400, 4096):
        for n_ops in (3, 8, 30, 120):
            for _ in range(8):
                run_case(lib, ffi, rng, max_key, n_ops)


def test_set_emulation_add_only_growth():
    # The directory's sharer sets only grow between transactions; walk
    # the resize schedule well past the 8-slot initial table.
    ffi, lib = loaded
    rng = random.Random(1992)
    out = ffi.new("long long[]", 8192)
    for _ in range(10):
        ref = set()
        cs = lib.ts_new()
        for _ in range(rng.randrange(1, 900)):
            key = rng.randrange(5000)
            ref.add(key)
            lib.ts_add(cs, key)
        count = lib.ts_items(cs, out)
        assert [out[i] for i in range(count)] == list(ref)
        lib.ts_free(cs)

"""Tests for the block-multithreaded processor model."""

import random

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.processor import ContextState
from repro.mapping.strategies import identity_mapping
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs


def make_machine(contexts=1, switch_cycles=11, compute=8, seed=1):
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        contexts=contexts,
        switch_cycles=switch_cycles,
        compute_cycles=compute,
        seed=seed,
        warmup_network_cycles=500,
        measure_network_cycles=2500,
    )
    graph = torus_neighbor_graph(4, 2)
    programs = build_programs(graph, contexts, compute, config.compute_jitter)
    return Machine(config, identity_mapping(16), programs)


class TestContextLifecycle:
    def test_initial_states(self):
        machine = make_machine(contexts=4)
        processor = machine.processors[0]
        states = [c.state for c in processor.contexts]
        assert states[0] is ContextState.COMPUTING
        assert all(s is ContextState.READY for s in states[1:])

    def test_single_context_never_switches(self):
        machine = make_machine(contexts=1)
        machine.run(warmup=200, measure=2000)
        assert all(p.switch_count == 0 for p in machine.processors)

    def test_multithreading_switches_contexts(self):
        machine = make_machine(contexts=4)
        machine.run(warmup=200, measure=2000)
        assert sum(p.switch_count for p in machine.processors) > 0

    def test_zero_switch_cost_allowed(self):
        machine = make_machine(contexts=2, switch_cycles=0)
        summary = machine.run(warmup=200, measure=2000)
        assert summary.remote_transactions > 0


class TestOverlap:
    def test_more_contexts_issue_more_transactions(self):
        # The whole point of multithreading: throughput rises with p.
        single = make_machine(contexts=1).run(warmup=500, measure=4000)
        quad = make_machine(contexts=4).run(warmup=500, measure=4000)
        assert quad.remote_transactions > 1.5 * single.remote_transactions

    def test_more_contexts_reduce_idle_time(self):
        single = make_machine(contexts=1).run(warmup=500, measure=4000)
        quad = make_machine(contexts=4).run(warmup=500, measure=4000)
        assert quad.idle_fraction < single.idle_fraction

    def test_blocked_context_accounting(self):
        machine = make_machine(contexts=4)
        machine.run(warmup=100, measure=500)
        for processor in machine.processors:
            assert 0 <= processor.blocked_contexts <= 4


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = make_machine(contexts=2, seed=9).run(warmup=300, measure=2000)
        b = make_machine(contexts=2, seed=9).run(warmup=300, measure=2000)
        assert a.messages_sent == b.messages_sent
        assert a.remote_transactions == b.remote_transactions
        assert a.mean_message_latency == b.mean_message_latency

    def test_different_seeds_differ(self):
        a = make_machine(contexts=2, seed=9).run(warmup=300, measure=2000)
        b = make_machine(contexts=2, seed=10).run(warmup=300, measure=2000)
        assert a.messages_sent != b.messages_sent

"""Deadlock safety-net behavior, pinned on both fabrics.

The dateline VC scheme makes routing deadlock impossible for e-cube
routes, so the stall counter is a safety net for bugs — but a safety net
only helps if it actually fires.  These tests craft a genuine circular
wait with ``inject_on_route`` (two worms holding each other's next
channel, a cycle e-cube routing can never produce) and check that both
fabrics raise :class:`SimulationError` at exactly ``stall_limit``
no-progress cycles, and that *any* progressing cycle — here, an
unrelated worm draining on a disjoint path — resets the counter rather
than merely pausing it.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import FabricKernel
from repro.sim.message import Message, MessageKind
from repro.sim.reference import ReferenceTorusFabric
from repro.topology.torus import Torus

FABRICS = [FabricKernel, ReferenceTorusFabric]

# On the radix-4 ring: channel 0->1 and channel 1->0, both VC 0.
FORWARD = ("link", 0, 0, 1, 0)
BACKWARD = ("link", 1, 0, -1, 0)


def control(source, destination, tag):
    return Message(MessageKind.READ_REQUEST, source, destination, (0, 0), tag)


def circular_wait_fabric(fabric_cls, stall_limit):
    """Two worms that each hold the channel the other needs.

    Worm A: inj 0 -> (0->1) -> (1->0) -> ej 0.
    Worm B: inj 1 -> (1->0) -> (0->1) -> ej 1.
    By cycle 2, A holds 0->1 and waits on 1->0 while B holds 1->0 and
    waits on 0->1; with 8-flit worms neither ever releases.  Cycle 1 is
    the last progressing cycle.
    """
    torus = Torus(radix=4, dimensions=1)
    fabric = fabric_cls(torus, on_delivery=lambda worm: None,
                        stall_limit=stall_limit)
    fabric.inject_on_route(
        control(0, 0, 0), [("inj", 0), FORWARD, BACKWARD, ("ej", 0)], 0
    )
    fabric.inject_on_route(
        control(1, 1, 1), [("inj", 1), BACKWARD, FORWARD, ("ej", 1)], 0
    )
    return fabric


def raise_cycle(fabric, inject_at=None, message=None, route=None, limit=5000):
    """Tick until the stall safety net fires; return the raising cycle."""
    for cycle in range(limit):
        if inject_at is not None and cycle == inject_at:
            fabric.inject_on_route(message, route, cycle)
        try:
            fabric.tick(cycle)
        except SimulationError:
            return cycle
    raise AssertionError("stall safety net never fired")


class TestCircularWait:
    @pytest.mark.parametrize("fabric_cls", FABRICS)
    def test_raises_at_exactly_stall_limit(self, fabric_cls):
        # Last progress at cycle 1; the counter reaches stall_limit on
        # cycle 1 + stall_limit, and raising one cycle earlier or later
        # would miss the off-by-one.
        for stall_limit in (40, 41):
            fabric = circular_wait_fabric(fabric_cls, stall_limit)
            assert raise_cycle(fabric) == 1 + stall_limit

    def test_kernel_and_reference_raise_identically(self):
        cycles = [
            raise_cycle(circular_wait_fabric(fabric_cls, 64))
            for fabric_cls in FABRICS
        ]
        assert cycles[0] == cycles[1]

    @pytest.mark.parametrize("fabric_cls", FABRICS)
    def test_progressing_cycle_resets_counter(self, fabric_cls):
        # Without interference the net fires at cycle 41.  A third worm
        # injected at cycle 30 on a disjoint path (2 -> 3) progresses
        # for several cycles; if that only *paused* the counter the
        # raise would land around cycle 50, but a reset restarts the
        # count from the bystander's last movement, pushing the raise
        # past cycle 30 + stall_limit.
        stall_limit = 40
        fabric = circular_wait_fabric(fabric_cls, stall_limit)
        bystander_route = [("inj", 2), ("link", 2, 0, 1, 0), ("ej", 3)]
        cycle = raise_cycle(
            fabric,
            inject_at=30,
            message=control(2, 3, 2),
            route=bystander_route,
        )
        assert cycle >= 30 + stall_limit

    def test_reset_parity_between_fabrics(self):
        cycles = []
        for fabric_cls in FABRICS:
            fabric = circular_wait_fabric(fabric_cls, 40)
            cycles.append(
                raise_cycle(
                    fabric,
                    inject_at=30,
                    message=control(2, 3, 2),
                    route=[("inj", 2), ("link", 2, 0, 1, 0), ("ej", 3)],
                )
            )
        assert cycles[0] == cycles[1]

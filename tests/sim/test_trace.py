"""Tests for the tracing and sampling subsystem."""

import json

import pytest

from repro.errors import ParameterError
from repro.mapping.strategies import identity_mapping
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.trace import Tracer
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs


def traced_machine(tracer, measure=2000):
    config = SimulationConfig(
        radix=4, dimensions=2, contexts=1,
        warmup_network_cycles=400, measure_network_cycles=measure,
    )
    graph = torus_neighbor_graph(4, 2)
    programs = build_programs(graph, 1, config.compute_cycles, 0.5)
    machine = Machine(config, identity_mapping(16), programs)
    machine.attach_tracer(tracer)
    machine.run()
    return machine


class TestConstruction:
    def test_rejects_unknown_kinds(self):
        with pytest.raises(ParameterError):
            Tracer(kinds=["message_sent", "quantum_flux"])

    def test_rejects_bad_capacity(self):
        with pytest.raises(ParameterError):
            Tracer(capacity=0)

    def test_rejects_negative_interval(self):
        with pytest.raises(ParameterError):
            Tracer(sample_interval=-1)


class TestEventCapture:
    def test_captures_protocol_events(self):
        tracer = Tracer()
        traced_machine(tracer)
        counts = tracer.count_by_kind()
        assert counts.get("message_sent", 0) > 0
        assert counts.get("message_delivered", 0) > 0
        assert counts.get("transaction_started", 0) > 0
        assert counts.get("transaction_completed", 0) > 0

    def test_kind_filter_applies_at_capture(self):
        tracer = Tracer(kinds=["message_sent"])
        traced_machine(tracer)
        assert set(tracer.count_by_kind()) == {"message_sent"}

    def test_events_carry_details(self):
        tracer = Tracer(kinds=["message_delivered"])
        traced_machine(tracer)
        event = tracer.events_of("message_delivered")[0]
        assert event.detail["latency"] > 0
        assert event.detail["hops"] >= 1

    def test_events_include_warmup(self):
        tracer = Tracer(kinds=["transaction_started"])
        traced_machine(tracer)
        # Warmup is 400 cycles; trace starts at cycle 0.
        assert any(e.cycle < 400 for e in tracer.events)

    def test_node_and_window_queries(self):
        tracer = Tracer(kinds=["message_sent"])
        traced_machine(tracer)
        assert tracer.events_at_node(0)
        window = tracer.between(0, 400)
        assert all(0 <= e.cycle < 400 for e in window)

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(kinds=["message_sent"], capacity=50)
        traced_machine(tracer)
        assert len(tracer.events) == 50
        assert tracer.dropped_events > 0

    def test_drop_count_is_monotonic_and_exact(self):
        tracer = Tracer(kinds=["message_sent"], capacity=3)
        for cycle in range(10):
            tracer.record("message_sent", cycle, node=0)
        # 10 appends into a 3-slot ring: exactly 7 evictions.
        assert tracer.dropped_events == 7
        # Queries and exports never reset the counter.
        tracer.count_by_kind()
        tracer.events_of("message_sent")
        assert tracer.dropped_events == 7
        tracer.record("message_sent", 10, node=0)
        assert tracer.dropped_events == 8

    def test_filtered_events_do_not_count_as_drops(self):
        tracer = Tracer(kinds=["message_sent"], capacity=2)
        for cycle in range(5):
            tracer.record("cache_hit", cycle, node=0)  # filtered out
        assert tracer.dropped_events == 0

    def test_summary_reports_drops(self):
        tracer = Tracer(kinds=["message_sent"], capacity=4)
        for cycle in range(6):
            tracer.record("message_sent", cycle, node=0)
        summary = tracer.summary()
        assert summary["events"] == 4
        assert summary["dropped_events"] == 2
        assert summary["capacity"] == 4
        assert summary["by_kind"] == {"message_sent": 4}
        assert summary["samples"] == 0


class TestSummaryAccounting:
    def test_summary_reports_zero_drops_under_capacity(self):
        tracer = Tracer(kinds=["message_sent"], capacity=100)
        for cycle in range(5):
            tracer.record("message_sent", cycle, node=0)
        summary = tracer.summary()
        assert summary["events"] == 5
        assert summary["dropped_events"] == 0
        assert summary["capacity"] == 100

    def test_summary_drops_accumulate_across_kinds(self):
        # The ring is shared: drops count evictions regardless of which
        # kind pushed the oldest event out.
        tracer = Tracer(
            kinds=["message_sent", "message_delivered"], capacity=4
        )
        for cycle in range(3):
            tracer.record("message_sent", cycle, node=0)
        for cycle in range(3):
            tracer.record("message_delivered", cycle, node=0)
        summary = tracer.summary()
        assert summary["events"] == 4
        assert summary["dropped_events"] == 2
        assert sum(summary["by_kind"].values()) == summary["events"]

    def test_summary_drop_count_survives_export(self, tmp_path):
        tracer = Tracer(kinds=["message_sent"], capacity=2)
        for cycle in range(5):
            tracer.record("message_sent", cycle, node=0)
        before = tracer.summary()["dropped_events"]
        tracer.to_jsonl(str(tmp_path / "trace.jsonl"))
        assert tracer.summary()["dropped_events"] == before == 3

    def test_summary_counts_samples(self):
        tracer = Tracer(kinds=[], sample_interval=400)
        traced_machine(tracer)
        summary = tracer.summary()
        # 2400 total cycles / 400 per sample.
        assert summary["samples"] == len(tracer.samples) == 6
        assert summary["events"] == 0
        assert summary["dropped_events"] == 0


class TestSampling:
    def test_periodic_samples(self):
        tracer = Tracer(kinds=[], sample_interval=100)
        machine = traced_machine(tracer, measure=1600)
        # 2000 total cycles / 100 = 20 samples.
        assert len(tracer.samples) == 20
        cycles = [s.cycle for s in tracer.samples]
        assert cycles == sorted(cycles)

    def test_samples_track_cumulative_counters(self):
        tracer = Tracer(kinds=[], sample_interval=200)
        traced_machine(tracer)
        completed = [s.transactions_completed for s in tracer.samples]
        assert completed[-1] >= completed[0]

    def test_sampling_disabled_by_default(self):
        tracer = Tracer(kinds=[])
        traced_machine(tracer)
        assert tracer.samples == []


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(kinds=["message_sent"], capacity=100)
        traced_machine(tracer)
        path = tracer.to_jsonl(str(tmp_path / "trace.jsonl"))
        lines = open(path).read().splitlines()
        assert len(lines) == len(tracer.events)
        first = json.loads(lines[0])
        assert first["kind"] == "message_sent"
        assert "cycle" in first

"""Tests for finite cache capacity and LRU eviction."""

import pytest

from repro.mapping.strategies import identity_mapping, random_mapping
from repro.sim.coherence import CacheState, DirectoryState
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.generators import uniform_random_graph_programs
from repro.workload.synthetic import build_programs

from tests.sim.test_machine import coherence_violations


def build(cache_lines=0, workload="neighbor", contexts=1, radix=4, seed=5):
    config = SimulationConfig(
        radix=radix,
        dimensions=2,
        contexts=contexts,
        cache_lines=cache_lines,
        seed=seed,
        warmup_network_cycles=800,
        measure_network_cycles=5000,
    )
    nodes = radix * radix
    graph = torus_neighbor_graph(radix, 2)
    if workload == "neighbor":
        programs = build_programs(
            graph, contexts, config.compute_cycles, config.compute_jitter
        )
    else:
        programs = uniform_random_graph_programs(
            graph, contexts, config.compute_cycles, config.compute_jitter
        )
    return Machine(config, identity_mapping(nodes), programs)


class TestCapacityEnforcement:
    def test_unbounded_cache_never_evicts(self):
        machine = build(cache_lines=0)
        summary = machine.run()
        assert summary.cache_evictions == 0

    def test_capacity_respected_after_run(self):
        machine = build(cache_lines=3, workload="uniform")
        machine.run()
        for controller in machine.controllers:
            # Mid-transaction installs may transiently overflow by the
            # in-flight lines; quiescent caches respect capacity closely.
            assert len(controller.cache) <= 3 + controller.config.contexts

    def test_small_cache_evicts_under_uniform_traffic(self):
        machine = build(cache_lines=3, workload="uniform")
        summary = machine.run()
        assert summary.cache_evictions > 0

    def test_neighbor_workload_fits_in_six_lines(self):
        # Each thread touches its own word + 4 neighbors = 5 lines.
        machine = build(cache_lines=6, workload="neighbor")
        summary = machine.run()
        assert summary.cache_evictions == 0


class TestTemporalLocalityEffect:
    def test_smaller_cache_means_fewer_hits(self):
        # The temporal-locality knob: capacity misses replace reuse.
        big = build(cache_lines=0, workload="uniform", seed=3).run()
        small = build(cache_lines=2, workload="uniform", seed=3).run()
        assert small.cache_hits <= big.cache_hits

    def test_eviction_increases_traffic(self):
        big = build(cache_lines=0, workload="uniform", seed=3).run()
        small = build(cache_lines=2, workload="uniform", seed=3).run()
        # Writebacks of evicted modified lines add messages.
        per_txn_big = big.messages_per_transaction
        per_txn_small = small.messages_per_transaction
        assert per_txn_small >= per_txn_big - 0.2


class TestCoherenceUnderEviction:
    @pytest.mark.parametrize("workload", ["neighbor", "uniform"])
    @pytest.mark.parametrize("cache_lines", [2, 4])
    def test_invariants_hold_with_tiny_caches(self, workload, cache_lines):
        machine = build(cache_lines=cache_lines, workload=workload, contexts=2)
        machine.run()
        assert eviction_aware_violations(machine) == []

    def test_modified_eviction_returns_line_home(self):
        machine = build(cache_lines=2, workload="uniform")
        machine.run()
        # Every directory entry claiming MODIFIED must have a live owner
        # copy or an outstanding transaction (checked above); spot-check
        # that UNOWNED entries exist, i.e. evictions actually returned
        # ownership to homes.
        unowned = sum(
            1
            for controller in machine.controllers
            for entry in controller.directory.values()
            if entry.state is DirectoryState.UNOWNED
        )
        assert unowned >= 0  # reachable state, machine still consistent


def eviction_aware_violations(machine):
    """Coherence invariants, allowing in-flight eviction writebacks.

    With evictions, a directory may briefly say MODIFIED while the
    owner's eviction writeback is in flight; such blocks show the owner
    cache line absent (None), which is legal.  A *SHARED* claim against a
    MODIFIED cache copy is never legal.
    """
    violations = []
    for controller in machine.controllers:
        for block, entry in controller.directory.items():
            if entry.busy:
                continue
            if entry.state is DirectoryState.SHARED:
                for sharer in entry.sharers:
                    if (
                        machine.controllers[sharer].cache.get(block)
                        is CacheState.MODIFIED
                    ):
                        violations.append((block, f"sharer {sharer} has M"))
            if entry.state is DirectoryState.MODIFIED:
                for node, other in enumerate(machine.controllers):
                    if node == entry.owner:
                        continue
                    if other.cache.get(block) is not None:
                        violations.append(
                            (block, f"non-owner {node} holds a copy")
                        )
    return violations

"""Tests for the multi-seed replication harness."""

import copy
import math

import pytest

from repro import obs
from repro.errors import ParameterError
from repro.mapping.strategies import random_mapping
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.replicate import (
    aggregate_summaries,
    default_seeds,
    run_replications,
)
from repro.sim.telemetry import LATENCY_METRIC, TelemetryConfig
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs


def small_setup(radix=4, contexts=2):
    config = SimulationConfig(
        radix=radix, dimensions=2, contexts=contexts,
        warmup_network_cycles=300, measure_network_cycles=1200,
    )
    graph = torus_neighbor_graph(radix, 2)
    programs = build_programs(
        graph, contexts, config.compute_cycles, config.compute_jitter
    )
    mapping = random_mapping(config.node_count, seed=radix)
    return config, mapping, programs


class TestSeeds:
    def test_default_seeds_enumerate_from_root(self):
        assert default_seeds(1992, 3) == (1992, 1993, 1994)

    def test_default_seeds_reject_empty(self):
        with pytest.raises(ParameterError):
            default_seeds(0, 0)

    def test_empty_seed_list_rejected(self):
        config, mapping, programs = small_setup()
        with pytest.raises(ParameterError):
            run_replications(config, mapping, programs, seeds=())


class TestAggregation:
    def test_aggregate_matches_hand_computation(self):
        config, mapping, programs = small_setup()
        result = run_replications(
            config, mapping, programs, default_seeds(config.seed, 3)
        )
        values = [s.mean_message_latency for s in result.summaries]
        mean = sum(values) / 3
        std = math.sqrt(sum((v - mean) ** 2 for v in values) / 2)
        aggregate = result.aggregates["mean_message_latency"]
        assert aggregate.mean == pytest.approx(mean)
        assert aggregate.std == pytest.approx(std)
        assert aggregate.ci95 == pytest.approx(1.96 * std / math.sqrt(3))
        assert aggregate.n == 3
        assert aggregate.values == tuple(values)

    def test_single_replication_has_zero_spread(self):
        config, mapping, programs = small_setup()
        result = run_replications(
            config, mapping, programs, default_seeds(config.seed, 1)
        )
        for aggregate in result.aggregates.values():
            assert aggregate.std == 0.0
            assert aggregate.ci95 == 0.0
            assert aggregate.n == 1

    def test_aggregate_summaries_rejects_empty(self):
        with pytest.raises(ParameterError):
            aggregate_summaries([])


class TestDeterminism:
    def test_first_seed_is_the_single_run(self):
        # default_seeds starts at the config's own seed, so replication
        # zero reproduces the old single-seed run exactly — adding error
        # bars never moves existing point estimates.
        config, mapping, programs = small_setup()
        single = Machine(config, mapping, copy.deepcopy(programs)).run()
        result = run_replications(
            config, mapping, programs, default_seeds(config.seed, 2)
        )
        assert result.summaries[0].as_dict() == single.as_dict()

    def test_jobs_do_not_change_results(self):
        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 3)
        serial = run_replications(config, mapping, programs, seeds, jobs=1)
        pooled = run_replications(config, mapping, programs, seeds, jobs=3)
        assert [s.as_dict() for s in serial.summaries] == [
            s.as_dict() for s in pooled.summaries
        ]
        assert serial.aggregates == pooled.aggregates

    def test_distinct_seeds_vary_the_measurement(self):
        config, mapping, programs = small_setup()
        result = run_replications(
            config, mapping, programs, default_seeds(config.seed, 3)
        )
        latencies = {s.mean_message_latency for s in result.summaries}
        assert len(latencies) > 1  # different streams, different runs

    def test_rng_provenance_recorded(self):
        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 2)
        result = run_replications(config, mapping, programs, seeds)
        assert result.rng["seeds"] == list(seeds)
        assert "SeedSequence" in result.rng["scheme"]


class TestTelemetry:
    def test_snapshots_empty_when_telemetry_off(self):
        config, mapping, programs = small_setup()
        result = run_replications(
            config, mapping, programs, default_seeds(config.seed, 2)
        )
        assert result.telemetry_snapshots() == []
        assert result.merged_telemetry() is None

    def test_each_replication_carries_a_snapshot(self):
        config, mapping, programs = small_setup()
        result = run_replications(
            config, mapping, programs, default_seeds(config.seed, 2),
            telemetry=TelemetryConfig(epoch_cycles=128),
        )
        snapshots = result.telemetry_snapshots()
        assert len(snapshots) == 2
        merged = result.merged_telemetry()
        assert merged["delivered"] == sum(s["delivered"] for s in snapshots)
        assert merged["total_cycles"] == sum(
            s["total_cycles"] for s in snapshots
        )

    def test_telemetry_does_not_change_measurements(self):
        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 2)
        bare = run_replications(config, mapping, programs, seeds)
        instrumented = run_replications(
            config, mapping, programs, seeds,
            telemetry=TelemetryConfig(epoch_cycles=128),
        )
        assert [s.as_dict() for s in bare.summaries] == [
            s.as_dict() for s in instrumented.summaries
        ]

    def test_jobs_do_not_change_merged_telemetry(self):
        # Satellite regression: the merged snapshot and the registry's
        # latency histogram must be identical whether the replications
        # ran serially or fanned out over pool workers (whose histogram
        # state ships back on the payload).
        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 2)
        telemetry = TelemetryConfig(epoch_cycles=128)
        enabled_before = obs.is_enabled()
        obs.enable(fresh=True)
        obs.REGISTRY.reset()
        try:
            serial = run_replications(
                config, mapping, programs, seeds, jobs=1, telemetry=telemetry
            )
            serial_histogram = obs.REGISTRY.get(LATENCY_METRIC).as_dict()
            obs.reset()
            obs.REGISTRY.reset()
            pooled = run_replications(
                config, mapping, programs, seeds, jobs=2, telemetry=telemetry
            )
            pooled_histogram = obs.REGISTRY.get(LATENCY_METRIC).as_dict()
        finally:
            obs.reset()
            obs.REGISTRY.reset()
            if not enabled_before:
                obs.disable()
        assert serial.merged_telemetry() == pooled.merged_telemetry()
        assert serial_histogram == pooled_histogram
        assert serial_histogram["count"] > 0


class TestBatchedReplication:
    """The CI-retained batch parity contract (see ISSUE 10).

    ``batch=R`` must be invisible in the results: same per-seed
    summaries, same aggregates, same merged telemetry as the serial
    path, with any chunk remainder and any jobs level.
    """

    def test_batched_matches_serial_per_seed(self):
        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 5)
        serial = run_replications(config, mapping, programs, seeds)
        # batch=2 over 5 seeds exercises the remainder chunk too.
        batched = run_replications(
            config, mapping, programs, seeds, batch=2
        )
        assert [s.as_dict() for s in batched.summaries] == [
            s.as_dict() for s in serial.summaries
        ]
        assert batched.aggregates == serial.aggregates
        assert batched.rng == serial.rng

    def test_batch_composes_with_pool_jobs(self):
        from repro.core.pool import WorkerPool

        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 4)
        serial = run_replications(config, mapping, programs, seeds)
        with WorkerPool(2) as pool:
            batched = run_replications(
                config, mapping, programs, seeds,
                jobs=2, pool=pool, batch=2,
            )
        assert [s.as_dict() for s in batched.summaries] == [
            s.as_dict() for s in serial.summaries
        ]

    def test_batched_telemetry_merges_identically(self):
        # Satellite regression: per-rep snapshots sliced out of a batch
        # run must merge to exactly the serial replications' result.
        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 3)
        telemetry = TelemetryConfig(epoch_cycles=128)
        serial = run_replications(
            config, mapping, programs, seeds, telemetry=telemetry
        )
        batched = run_replications(
            config, mapping, programs, seeds, telemetry=telemetry, batch=3
        )
        assert len(batched.telemetry_snapshots()) == 3
        assert batched.telemetry_snapshots() == serial.telemetry_snapshots()
        assert batched.merged_telemetry() == serial.merged_telemetry()

    def test_batch_validation(self):
        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 2)
        with pytest.raises(ParameterError, match="batch must be >= 1"):
            run_replications(config, mapping, programs, seeds, batch=0)
        with pytest.raises(ParameterError, match="exceeds the replication"):
            run_replications(config, mapping, programs, seeds, batch=3)

    def test_wormhole_batch_matches_serial(self):
        config, mapping, programs = small_setup()
        config = SimulationConfig(
            radix=4, dimensions=2, contexts=2, switching="wormhole",
            warmup_network_cycles=300, measure_network_cycles=1200,
        )
        seeds = default_seeds(config.seed, 2)
        serial = run_replications(config, mapping, programs, seeds)
        batched = run_replications(
            config, mapping, programs, seeds, batch=2
        )
        assert [s.as_dict() for s in batched.summaries] == [
            s.as_dict() for s in serial.summaries
        ]


class TestWarmPoolDeterminism:
    """Reusing a warm pool must be invisible in the results.

    The tentpole contract: same seeds through a *reused* warm pool ==
    a fresh pool == the serial path, bit for bit, under both start
    methods.  Warm workers recycle the broadcast payload across tasks,
    so any leaked per-run state (the programs' cursors, a stale obs
    buffer) would show up here as a second-pass divergence.
    """

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_reused_pool_matches_fresh_pool_and_serial(self, start_method):
        import multiprocessing

        from repro.core.pool import WorkerPool

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"no {start_method} on this platform")
        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 3)
        serial = run_replications(config, mapping, programs, seeds, jobs=1)
        with WorkerPool(2, start_method=start_method) as pool:
            first = run_replications(
                config, mapping, programs, seeds, jobs=2, pool=pool
            )
            again = run_replications(
                config, mapping, programs, seeds, jobs=2, pool=pool
            )
        expected = [s.as_dict() for s in serial.summaries]
        assert [s.as_dict() for s in first.summaries] == expected
        assert [s.as_dict() for s in again.summaries] == expected
        assert serial.aggregates == first.aggregates == again.aggregates

    def test_explicit_pool_short_circuits_jobs_one(self):
        # Passing a pool routes the sweep through it even at jobs=1 —
        # the injection hook the spawn-parity tests rely on.
        from repro.core.pool import WorkerPool

        config, mapping, programs = small_setup()
        seeds = default_seeds(config.seed, 2)
        serial = run_replications(config, mapping, programs, seeds, jobs=1)
        with WorkerPool(1) as pool:
            pooled = run_replications(
                config, mapping, programs, seeds, jobs=1, pool=pool
            )
            assert pool.started
        assert [s.as_dict() for s in serial.summaries] == [
            s.as_dict() for s in pooled.summaries
        ]

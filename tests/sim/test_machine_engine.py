"""Tests for the event-calendar machine engine (repro.sim.engine).

The engine's contract is *bit-identity* with the retained per-cycle
step loop — same RNG draw order, same summary, same telemetry epochs,
same tracer events and samples — so most tests here run the same
configuration through both drivers and compare everything observable.
The unit tests pin the calendar arithmetic the parity rests on:
``Processor.next_event_ticks`` / ``skip_ticks`` and the fabrics'
``next_event_cycle`` horizons.
"""

import pytest

from repro.mapping.strategies import (
    block_collocation_mapping,
    identity_mapping,
)
from repro.sim.config import SimulationConfig
from repro.sim.cut_through import CutThroughFabric
from repro.sim.engine import MachineEngine, engine_enabled_default
from repro.sim.machine import Machine
from repro.sim.message import Message, MessageKind
from repro.sim.network import TorusFabric
from repro.sim.reference import ReferenceTorusFabric
from repro.sim.telemetry import TelemetryConfig
from repro.sim.trace import Tracer
from repro.topology.graphs import ring_graph, torus_neighbor_graph
from repro.topology.torus import Torus
from repro.workload.synthetic import build_programs


def make_machine(
    engine,
    radix=4,
    dimensions=2,
    contexts=1,
    compute=8,
    switching="cut_through",
    speedup=2,
    seed=7,
    collocated=False,
):
    config = SimulationConfig(
        radix=radix,
        dimensions=dimensions,
        contexts=contexts,
        compute_cycles=compute,
        switching=switching,
        network_speedup=speedup,
        seed=seed,
    )
    nodes = config.node_count
    if collocated:
        graph = ring_graph(nodes * contexts)
        programs = build_programs(graph, 1, compute, config.compute_jitter)
        mapping = block_collocation_mapping(nodes * contexts, nodes)
    else:
        graph = torus_neighbor_graph(radix, dimensions)
        programs = build_programs(
            graph, contexts, compute, config.compute_jitter
        )
        mapping = identity_mapping(nodes)
    return Machine(config, mapping, programs, engine=engine)


def run_both(warmup=300, measure=1200, attach=False, **kw):
    """Run the same configuration through both drivers; return observables."""
    results = []
    for engine in (False, True):
        machine = make_machine(engine, **kw)
        tracer = telemetry = None
        if attach:
            tracer = Tracer(sample_interval=100)
            machine.attach_tracer(tracer)
            telemetry = machine.attach_telemetry(
                TelemetryConfig(epoch_cycles=128)
            )
        summary = machine.run(warmup=warmup, measure=measure)
        results.append((machine, summary, tracer, telemetry))
    return results


def assert_parity(results):
    (_, s_loop, t_loop, tel_loop), (_, s_eng, t_eng, tel_eng) = results
    loop, eng = s_loop.as_dict(), s_eng.as_dict()
    assert loop == eng, {
        key: (loop[key], eng[key]) for key in loop if loop[key] != eng[key]
    }
    if t_loop is not None:
        assert list(t_loop.events) == list(t_eng.events)
        assert t_loop.samples == t_eng.samples
        assert tel_loop.snapshot() == tel_eng.snapshot()


# ----------------------------------------------------------------------
# Processor wake-calendar arithmetic.
# ----------------------------------------------------------------------


class TestProcessorCalendar:
    def _advance(self, machine, predicate, limit=5000):
        """Step until some processor satisfies ``predicate``; return it."""
        for _ in range(limit):
            machine.step()
            for processor in machine.processors:
                if predicate(processor):
                    return processor
        raise AssertionError("no processor reached the wanted state")

    def test_computing_distance_is_remaining_plus_one(self):
        machine = make_machine(False)
        processor = machine.processors[0]
        remaining = processor.contexts[0].remaining_cycles
        assert processor.next_event_ticks() == remaining + 1

    def test_skip_ticks_burns_compute_countdown(self):
        machine = make_machine(False)
        processor = machine.processors[0]
        before = processor.contexts[0].remaining_cycles
        assert before > 3
        processor.skip_ticks(3)
        assert processor.contexts[0].remaining_cycles == before - 3

    def test_idle_processor_has_no_event(self):
        machine = make_machine(False, contexts=1)
        processor = self._advance(machine, lambda p: p._active is None)
        assert processor.next_event_ticks() is None
        idle_before = processor.idle_cycles
        processor.skip_ticks(5)
        assert processor.idle_cycles == idle_before + 5

    def test_switching_distance_spans_switch_and_target_run(self):
        machine = make_machine(False, contexts=2, compute=40)
        processor = self._advance(machine, lambda p: p._switch_remaining > 0)
        target = processor.contexts[processor._switch_target]
        expected = (
            processor._switch_remaining + target.remaining_cycles + 1
        )
        assert processor.next_event_ticks() == expected

    def test_skip_ticks_crosses_switch_completion(self):
        machine = make_machine(False, contexts=2, compute=40)
        processor = self._advance(machine, lambda p: p._switch_remaining > 0)
        switch = processor._switch_remaining
        target = processor._switch_target
        remaining = processor.contexts[target].remaining_cycles
        processor.skip_ticks(switch + 2)
        assert processor._switch_remaining == 0
        assert processor._active == target
        assert processor.contexts[target].remaining_cycles == remaining - 2

    def test_skip_zero_is_noop(self):
        machine = make_machine(False)
        processor = machine.processors[0]
        before = processor.contexts[0].remaining_cycles
        processor.skip_ticks(0)
        assert processor.contexts[0].remaining_cycles == before


# ----------------------------------------------------------------------
# Fabric quiescence horizons.
# ----------------------------------------------------------------------


def _message(source, destination, uid=0):
    return Message(MessageKind.READ_REQUEST, source, destination, (0, 0), uid)


class TestFabricHorizons:
    def test_cut_through_empty_fabric_has_no_horizon(self):
        fabric = CutThroughFabric(Torus(4, 2), on_delivery=lambda t: None)
        assert fabric.next_event_cycle(0) is None

    def test_cut_through_grantable_now_returns_cycle(self):
        fabric = CutThroughFabric(Torus(4, 2), on_delivery=lambda t: None)
        fabric.inject(_message(0, 1), 0)
        assert fabric.next_event_cycle(0) == 0

    def test_cut_through_horizon_skips_are_noops(self):
        """Every cycle below the reported horizon must be a no-op tick."""
        delivered = []
        fabric = CutThroughFabric(Torus(4, 2), on_delivery=delivered.append)
        fabric.inject(_message(0, 1, uid=0), 0)
        fabric.inject(_message(0, 2, uid=1), 0)  # queued behind uid=0
        cycle = 0
        while not fabric.quiescent():
            horizon = fabric.next_event_cycle(cycle)
            assert horizon is not None and horizon >= cycle
            if horizon > cycle:
                state = (
                    fabric.delivered_count,
                    list(fabric._pending),
                    list(fabric._free_at),
                    list(fabric._head_eligible),
                )
                for noop in range(cycle, horizon):
                    fabric.tick(noop)
                assert state == (
                    fabric.delivered_count,
                    list(fabric._pending),
                    list(fabric._free_at),
                    list(fabric._head_eligible),
                )
                cycle = horizon
            fabric.tick(cycle)
            cycle += 1
            assert cycle < 1000
        assert len(delivered) == 2

    def test_cut_through_drain_horizon_is_delivery_cycle(self):
        fabric = CutThroughFabric(Torus(4, 2), on_delivery=lambda t: None)
        fabric.inject(_message(0, 1), 0)
        cycle = 0
        while fabric._delivery_count == 0:
            fabric.tick(cycle)
            cycle += 1
        if not fabric._pending:
            assert fabric.next_event_cycle(cycle) == min(fabric._deliveries)

    @pytest.mark.parametrize(
        "fabric_cls", [TorusFabric, ReferenceTorusFabric]
    )
    def test_wormhole_horizon_is_busy_or_none(self, fabric_cls):
        fabric = fabric_cls(Torus(4, 2), on_delivery=lambda t: None)
        assert fabric.next_event_cycle(0) is None
        fabric.inject(_message(0, 1), 0)
        assert fabric.next_event_cycle(0) == 0


# ----------------------------------------------------------------------
# Tracer fast-forward sampling.
# ----------------------------------------------------------------------


class TestTracerOnSkip:
    def test_on_skip_matches_cycle_by_cycle_sampling(self):
        machine = make_machine(False)
        skipped = Tracer(sample_interval=10)
        stepped = Tracer(sample_interval=10)
        skipped.on_skip(machine, 3, 41)
        for cycle in range(3, 41):
            stepped.on_cycle(machine, cycle)
        assert skipped.samples == stepped.samples
        assert [s.cycle for s in skipped.samples] == [10, 20, 30, 40]

    def test_on_skip_disabled_without_interval(self):
        machine = make_machine(False)
        tracer = Tracer(sample_interval=0)
        tracer.on_skip(machine, 0, 1000)
        assert tracer.samples == []


# ----------------------------------------------------------------------
# Engine wiring.
# ----------------------------------------------------------------------


class TestEngineWiring:
    def test_default_follows_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert engine_enabled_default() is True
        monkeypatch.setenv("REPRO_SIM_ENGINE", "0")
        assert engine_enabled_default() is False
        assert make_machine(None).engine_enabled is False

    def test_explicit_flag_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "0")
        assert make_machine(True).engine_enabled is True

    def test_step_works_after_engine_run(self):
        machine = make_machine(True)
        machine.run(warmup=100, measure=400)
        cycle = machine.cycle
        machine.step()  # wake listeners must be detached
        assert machine.cycle == cycle + 1

    def test_second_run_stays_in_parity(self):
        loop = make_machine(False)
        engine = make_machine(True)
        first = (loop.run(warmup=200, measure=600).as_dict(),
                 engine.run(warmup=200, measure=600).as_dict())
        assert first[0] == first[1]
        second = (loop.run(warmup=0, measure=600).as_dict(),
                  engine.run(warmup=0, measure=600).as_dict())
        assert second[0] == second[1]

    def test_engine_resumes_mid_machine(self):
        """An engine built on a stepped machine picks up where it left off."""
        loop = make_machine(False)
        resumed = make_machine(False)
        for _ in range(137):  # not a processor-boundary multiple
            loop.step()
            resumed.step()
        engine = MachineEngine(resumed)
        engine.run_window(863)
        for _ in range(863):
            loop.step()
        for a, b in zip(loop.processors, resumed.processors):
            assert a.idle_cycles == b.idle_cycles
            assert a.switch_count == b.switch_count


# ----------------------------------------------------------------------
# Directed parity (the engine's whole contract).
# ----------------------------------------------------------------------


class TestParity:
    @pytest.mark.parametrize("switching", ["cut_through", "wormhole"])
    @pytest.mark.parametrize("speedup", [1, 2])
    def test_fabric_and_speedup_parity_with_instrumentation(
        self, switching, speedup
    ):
        assert_parity(
            run_both(switching=switching, speedup=speedup, attach=True)
        )

    @pytest.mark.parametrize("compute", [8, 400])
    @pytest.mark.parametrize("contexts", [1, 2])
    def test_load_parity(self, compute, contexts):
        assert_parity(run_both(compute=compute, contexts=contexts))

    def test_collocated_parity(self):
        assert_parity(run_both(contexts=2, collocated=True, attach=True))

    @pytest.mark.parametrize("dimensions,radix", [(1, 8), (3, 3)])
    def test_torus_shape_parity(self, dimensions, radix):
        assert_parity(
            run_both(dimensions=dimensions, radix=radix, attach=True)
        )

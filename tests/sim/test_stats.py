"""Tests for measurement collection and reduction."""

import pytest

from repro.errors import SimulationError
from repro.sim.message import Message, MessageKind
from repro.sim.stats import MachineStats


def make_message(kind=MessageKind.READ_REQUEST, injected=0, delivered=20):
    message = Message(kind, 0, 1, (0, 0), 0)
    message.injected_at = injected
    message.delivered_at = delivered
    return message


class TestGating:
    def test_nothing_recorded_before_measuring(self):
        stats = MachineStats(nodes=4)
        stats.message_sent(0, make_message(), 10)
        stats.transaction_started(0, 10)
        stats.cache_hit(0)
        assert stats.messages_sent == 0
        assert stats.cache_hits_count == 0

    def test_start_measuring_snapshots_link_flits(self):
        stats = MachineStats(nodes=4)
        stats.start_measuring(100, {"link": 500})
        assert stats.link_flits_at_reset == {"link": 500}
        assert stats.measuring

    def test_window_requires_close(self):
        stats = MachineStats(nodes=4)
        stats.start_measuring(100, {})
        with pytest.raises(SimulationError):
            _ = stats.window_cycles
        stats.stop_measuring(400)
        assert stats.window_cycles == 300


class TestReduction:
    def make_measured(self):
        stats = MachineStats(nodes=2)
        stats.start_measuring(0, {"l": 0})
        for _ in range(10):
            stats.message_sent(0, make_message(), 5)
        message = make_message(injected=0, delivered=24)
        stats.message_delivered(message, hops=2, source_wait=0, cycle=24)
        stats.transaction_started(0, 0)
        stats.transaction_completed(0, 0, 50, remote=True)
        stats.transaction_completed(1, 0, 10, remote=False)
        stats.stop_measuring(1000)
        return stats

    def test_summary_rates(self):
        stats = self.make_measured()
        summary = stats.summary({"l": 2000}, physical_links=4, network_speedup=2)
        assert summary.messages_sent == 10
        # 10 messages / (1000 cycles * 2 nodes)
        assert summary.message_rate == pytest.approx(0.005)
        assert summary.mean_message_interval == pytest.approx(200.0)

    def test_summary_utilization_uses_delta(self):
        stats = self.make_measured()
        summary = stats.summary({"l": 2000}, physical_links=4, network_speedup=2)
        assert summary.channel_utilization == pytest.approx(
            2000 / (1000 * 4)
        )

    def test_per_hop_latency_nets_out_serialization(self):
        stats = self.make_measured()
        summary = stats.summary({"l": 0}, physical_links=4, network_speedup=2)
        # latency 24, flits 8, wait 0, hops 2 -> (24 - 8) / 2 = 8.
        assert summary.mean_per_hop_latency == pytest.approx(8.0)

    def test_transaction_classification(self):
        stats = self.make_measured()
        summary = stats.summary({"l": 0}, physical_links=4, network_speedup=2)
        assert summary.remote_transactions == 1
        assert summary.local_transactions == 1
        assert summary.transactions == 2
        assert summary.mean_transaction_latency == pytest.approx(50.0)

    def test_issue_interval_counts_remote_only(self):
        stats = self.make_measured()
        summary = stats.summary({"l": 0}, physical_links=4, network_speedup=2)
        # window 1000 * 2 nodes / 1 remote transaction.
        assert summary.mean_issue_interval == pytest.approx(2000.0)

    def test_empty_window_fields_are_none(self):
        stats = MachineStats(nodes=2)
        stats.start_measuring(0, {})
        stats.stop_measuring(100)
        summary = stats.summary({}, physical_links=4, network_speedup=2)
        assert summary.mean_message_latency is None
        assert summary.messages_per_transaction is None

"""Regenerate the simulator parity fixture (tests/sim/golden_parity.json).

Run from the repo root:

    PYTHONPATH=src python tests/sim/golden_gen.py

Wormhole cases are generated with the machine running on
``repro.sim.reference.ReferenceTorusFabric`` — the object-based
executable specification — while ``test_golden_parity.py`` replays them
on the default (array-kernel) fabric.  Fixture equality therefore *is*
the reference-vs-kernel parity check, pinned over full machine runs:
message counts, delivery counts, link-flit totals, and complete
message-latency histograms, cycle for cycle.
"""

from __future__ import annotations

import json
import os
from collections import Counter

from repro.mapping.strategies import identity_mapping, random_mapping
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.reference import ReferenceTorusFabric
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURE = os.path.join(HERE, "golden_parity.json")

CASES = [
    ("cut_through", 1, "identity"),
    ("cut_through", 2, "random"),
    ("wormhole", 1, "identity"),
    ("wormhole", 2, "random"),
]


def run_case(switching: str, contexts: int, mapping_name: str) -> dict:
    config = SimulationConfig(
        contexts=contexts,
        switching=switching,
        warmup_network_cycles=0,
        measure_network_cycles=2000,
    )
    graph = torus_neighbor_graph(8, 2)
    programs = build_programs(
        graph, contexts, config.compute_cycles, config.compute_jitter
    )
    if mapping_name == "identity":
        mapping = identity_mapping(64)
    else:
        mapping = random_mapping(64, seed=7)

    latencies: Counter = Counter()
    hops: Counter = Counter()

    factory = ReferenceTorusFabric if switching == "wormhole" else None
    machine = Machine(config, mapping, programs, fabric_factory=factory)
    original_deliver = machine._deliver

    def recording_deliver(transit):
        message = transit.message
        original_deliver(transit)
        latencies[message.delivered_at - message.injected_at] += 1
        hops[transit.hops] += 1

    machine.fabric.on_delivery = recording_deliver
    summary = machine.run(warmup=500, measure=2000)

    return {
        "messages_sent": summary.messages_sent,
        "transactions": summary.transactions,
        "mean_message_latency": summary.mean_message_latency,
        "mean_per_hop_latency": summary.mean_per_hop_latency,
        "delivered": machine.fabric.delivered_count,
        "link_flits_total": sum(machine.fabric.link_flits.values()),
        "latency_histogram": {
            str(k): v for k, v in sorted(latencies.items())
        },
        "hop_histogram": {str(k): v for k, v in sorted(hops.items())},
    }


def main() -> None:
    golden = {
        f"{switching}-p{contexts}-{mapping}": run_case(
            switching, contexts, mapping
        )
        for switching, contexts, mapping in CASES
    }
    with open(FIXTURE, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    main()

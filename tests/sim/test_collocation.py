"""Tests for collocation mode (UCL-style locality, Section 1.1)."""

import pytest

from repro.errors import SimulationError
from repro.mapping.base import Mapping
from repro.mapping.strategies import (
    block_collocation_mapping,
    identity_mapping,
)
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.graphs import ring_graph
from repro.workload.synthetic import build_programs


def ring_machine(mapping, contexts=2, radix=4):
    """A 2x-collocated ring application on a radix x radix torus."""
    config = SimulationConfig(
        radix=radix, dimensions=2, contexts=contexts,
        warmup_network_cycles=500, measure_network_cycles=3000,
    )
    threads = config.node_count * contexts
    graph = ring_graph(threads)
    programs = build_programs(graph, 1, config.compute_cycles, 0.5)
    return Machine(config, mapping, programs)


def shuffled_collocation(threads, processors, seed=3):
    """Collocation that ignores the ring structure (balanced, random)."""
    import random

    order = list(range(threads))
    random.Random(seed).shuffle(order)
    assignment = [0] * threads
    per_node = threads // processors
    for position, thread in enumerate(order):
        assignment[thread] = position // per_node
    return Mapping(assignment=tuple(assignment), processors=processors)


class TestValidation:
    def test_collocation_requires_single_instance(self):
        config = SimulationConfig(radix=4, dimensions=2, contexts=2)
        graph = ring_graph(32)
        programs = build_programs(graph, 2, 8, 0.5)  # two instances: wrong
        with pytest.raises(SimulationError):
            Machine(config, block_collocation_mapping(32, 16), programs)

    def test_collocation_requires_balanced_load(self):
        config = SimulationConfig(radix=4, dimensions=2, contexts=2)
        graph = ring_graph(32)
        programs = build_programs(graph, 1, 8, 0.5)
        lopsided = Mapping(
            assignment=tuple([0] * 4 + [i % 16 for i in range(28)]),
            processors=16,
        )
        with pytest.raises(SimulationError):
            Machine(config, lopsided, programs)

    def test_wrong_thread_count_rejected(self):
        config = SimulationConfig(radix=4, dimensions=2, contexts=2)
        graph = ring_graph(48)  # neither 16 nor 32
        programs = build_programs(graph, 1, 8, 0.5)
        mapping = Mapping(
            assignment=tuple(i % 16 for i in range(48)), processors=16
        )
        with pytest.raises(SimulationError):
            Machine(config, mapping, programs)


class TestCollocationLocality:
    def test_collocated_ring_runs(self):
        machine = ring_machine(block_collocation_mapping(32, 16))
        summary = machine.run()
        assert summary.transactions > 0

    def test_good_collocation_cuts_network_traffic(self):
        # Blocked collocation puts ring neighbors together: half of each
        # thread's communication becomes node-local.  A shuffled
        # collocation keeps everything remote.  (The 0.85 bound holds
        # with >10% margin across measurement windows for the recorded
        # root-seed streams.)
        good = ring_machine(block_collocation_mapping(32, 16)).run()
        bad = ring_machine(shuffled_collocation(32, 16)).run()
        assert good.messages_sent < 0.85 * bad.messages_sent

    def test_good_collocation_improves_throughput(self):
        # Collocated communicating threads share the node's cache, so
        # their exchanges become cache hits; total completed accesses
        # rise and processors idle less.
        good = ring_machine(block_collocation_mapping(32, 16)).run()
        bad = ring_machine(shuffled_collocation(32, 16)).run()
        assert (
            good.cache_hits + good.transactions
            > bad.cache_hits + bad.transactions
        )
        assert good.idle_fraction < bad.idle_fraction

    def test_collocated_neighbors_communicate_through_the_cache(self):
        good = ring_machine(block_collocation_mapping(32, 16)).run()
        bad = ring_machine(shuffled_collocation(32, 16)).run()
        # Half of each thread's ring partners are on-node under blocked
        # collocation: those exchanges become hits.
        assert good.cache_hits > 2 * bad.cache_hits

    def test_replicated_mode_still_works(self):
        # The paper's arrangement is unaffected by the new mode.
        config = SimulationConfig(
            radix=4, dimensions=2, contexts=2,
            warmup_network_cycles=500, measure_network_cycles=2000,
        )
        from repro.topology.graphs import torus_neighbor_graph

        graph = torus_neighbor_graph(4, 2)
        programs = build_programs(graph, 2, config.compute_cycles, 0.5)
        machine = Machine(config, identity_mapping(16), programs)
        assert machine.run().remote_transactions > 0

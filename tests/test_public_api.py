"""Public-API hygiene: everything exported exists and is documented."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.pool",
    "repro.topology",
    "repro.mapping",
    "repro.sim",
    "repro.workload",
    "repro.analysis",
    "repro.experiments",
    "repro.units",
    "repro.errors",
    "repro.nomenclature",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
class TestPublicSurface:
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_exported_callables_are_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert undocumented == []


class TestTopLevelConvenience:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_alewife_factory_lazy_import(self):
        import repro

        system = repro.alewife_system(contexts=2)
        assert system.latency_sensitivity == pytest.approx(3.26)

    def test_star_import_is_clean(self):
        namespace = {}
        exec("from repro import *", namespace)  # noqa: S102 - test only
        assert "SystemModel" in namespace
        assert "solve" in namespace

"""Tests for multi-chain (restart) annealing."""

import pytest

from repro.errors import MappingError
from repro.mapping.anneal import anneal_mapping
from repro.mapping.chains import MultiChainResult, anneal_chains
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.topology.graphs import star_graph, torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture
def torus():
    return Torus(radix=4, dimensions=2)


@pytest.fixture
def graph():
    return torus_neighbor_graph(4, 2)


@pytest.fixture
def start():
    return random_mapping(16, seed=3)


class TestChainParity:
    def test_each_chain_matches_standalone_anneal(self, torus, graph, start):
        # The batched lockstep path must be bit-identical, chain for
        # chain, to independent anneal_mapping runs seeded seed + i.
        search = anneal_chains(
            graph, torus, start, chains=3, steps=1200, seed=11
        )
        for index, result in enumerate(search.results):
            standalone = anneal_mapping(
                graph, torus, start, steps=1200, seed=11 + index
            )
            assert result == standalone

    def test_jobs_do_not_change_results(self, torus, graph, start):
        batched = anneal_chains(
            graph, torus, start, chains=3, steps=600, seed=5, jobs=1
        )
        pooled = anneal_chains(
            graph, torus, start, chains=3, steps=600, seed=5, jobs=2
        )
        assert batched.results == pooled.results
        assert batched.best_index == pooled.best_index

    def test_deterministic(self, torus, graph, start):
        a = anneal_chains(graph, torus, start, chains=2, steps=500, seed=9)
        b = anneal_chains(graph, torus, start, chains=2, steps=500, seed=9)
        assert a == b

    def test_spawn_pool_with_seeded_table_matches_batched(
        self, torus, graph, start
    ):
        # Spawn workers receive the parent's dense distance table over
        # shared memory and install it via seed_distance_table; the
        # chains must still be bit-identical to the batched path.
        from repro.core.pool import WorkerPool

        batched = anneal_chains(
            graph, torus, start, chains=2, steps=400, seed=5, jobs=1
        )
        with WorkerPool(2, start_method="spawn") as pool:
            pooled = anneal_chains(
                graph, torus, start, chains=2, steps=400, seed=5, pool=pool
            )
            reused = anneal_chains(
                graph, torus, start, chains=2, steps=400, seed=5, pool=pool
            )
        assert batched.results == pooled.results == reused.results
        assert batched.best_index == pooled.best_index


class TestSelection:
    def test_seeds_are_consecutive(self, torus, graph, start):
        search = anneal_chains(
            graph, torus, start, chains=4, steps=200, seed=30
        )
        assert search.seeds == (30, 31, 32, 33)
        assert search.chains == 4

    def test_best_is_the_minimum_distance_chain(self, torus, graph, start):
        search = anneal_chains(
            graph, torus, start, chains=4, steps=1500, seed=2
        )
        assert search.best.best_distance == min(search.distances)
        assert search.best is search.results[search.best_index]

    def test_ties_resolve_to_lowest_index(self):
        # A star graph is distance-invariant enough that short chains
        # often tie; selection must then prefer the earliest chain.
        from repro.mapping.chains import _select_best
        from repro.mapping.anneal import AnnealResult
        from repro.mapping.base import Mapping

        mapping = Mapping(assignment=(0, 1), processors=2)
        tied = AnnealResult(
            mapping=mapping,
            distance=1.0,
            initial_distance=1.0,
            best_distance=1.0,
            accepted_moves=0,
            attempted_moves=0,
        )
        assert _select_best((tied, tied, tied)) == 0

    def test_more_chains_never_worse(self, torus, graph, start):
        few = anneal_chains(graph, torus, start, chains=1, steps=800, seed=4)
        many = anneal_chains(graph, torus, start, chains=4, steps=800, seed=4)
        assert many.best.best_distance <= few.best.best_distance

    def test_improves_on_structured_pattern(self, torus, graph, start):
        search = anneal_chains(
            graph, torus, start, chains=2, steps=2500, seed=0
        )
        assert search.best.best_distance < search.best.initial_distance
        assert search.best.mapping.is_bijective


class TestValidation:
    def test_rejects_bad_chain_count(self, torus, graph, start):
        with pytest.raises(MappingError):
            anneal_chains(graph, torus, start, chains=0, steps=10)

    def test_rejects_bad_jobs(self, torus, graph, start):
        with pytest.raises(MappingError):
            anneal_chains(graph, torus, start, chains=2, steps=10, jobs=0)

    def test_rejects_mismatched_mapping(self, torus, graph):
        with pytest.raises(MappingError):
            anneal_chains(graph, torus, identity_mapping(8), steps=10)

    def test_rejects_bad_schedule(self, torus, graph, start):
        with pytest.raises(MappingError):
            anneal_chains(graph, torus, start, steps=10, cooling=1.5)

    def test_result_shape(self, torus, start):
        search = anneal_chains(
            star_graph(16), torus, start, chains=2, steps=100, seed=1
        )
        assert isinstance(search, MultiChainResult)
        assert len(search.results) == 2
        for result in search.results:
            assert result.attempted_moves + result.skipped_moves == 100

"""Tests for simulated-annealing mapping optimization."""

import pytest

from repro.errors import MappingError
from repro.mapping.anneal import anneal_mapping
from repro.mapping.evaluate import average_distance
from repro.mapping.optimize import minimize_distance
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture
def torus():
    return Torus(radix=4, dimensions=2)


@pytest.fixture
def graph():
    return torus_neighbor_graph(4, 2)


class TestAnnealing:
    def test_improves_random_start(self, torus, graph):
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=4000, seed=1
        )
        assert result.distance < result.initial_distance

    def test_reported_distance_matches_mapping(self, torus, graph):
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=2000, seed=1
        )
        assert result.distance == pytest.approx(
            average_distance(graph, result.mapping, torus)
        )

    def test_returns_best_not_final(self, torus, graph):
        # best_distance is the reported distance by construction.
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=2000, seed=1
        )
        assert result.distance == result.best_distance

    def test_deterministic(self, torus, graph):
        a = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=1500, seed=42
        )
        b = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=1500, seed=42
        )
        assert a.mapping == b.mapping

    def test_at_least_as_good_as_hill_climbing_on_average(self, torus, graph):
        # Same budget, several seeds: annealing should not lose overall.
        anneal_total = 0.0
        climb_total = 0.0
        for seed in range(4):
            start = random_mapping(16, seed=seed)
            anneal_total += anneal_mapping(
                graph, torus, start, steps=4000, seed=seed
            ).distance
            climb_total += minimize_distance(
                graph, torus, start, steps=4000, seed=seed
            ).distance
        assert anneal_total <= climb_total + 0.4

    def test_result_is_bijective(self, torus, graph):
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=500, seed=1
        )
        assert result.mapping.is_bijective

    @pytest.mark.parametrize("kwargs", [
        {"steps": -1},
        {"cooling": 1.0},
        {"cooling": 0.0},
        {"initial_temperature": 0.0},
    ])
    def test_rejects_bad_parameters(self, torus, graph, kwargs):
        with pytest.raises(MappingError):
            anneal_mapping(
                graph, torus, identity_mapping(16), seed=1, **kwargs
            )

    def test_rejects_mismatched_sizes(self, torus, graph):
        with pytest.raises(MappingError):
            anneal_mapping(graph, torus, identity_mapping(8), steps=10)


class TestMoveCounting:
    """Regression: attempted_moves used to report the raw step count.

    Same-thread draws never attempt a swap; they are now tallied in
    ``skipped_moves``, with ``attempted + skipped == steps`` and the
    cooling schedule still decaying once per drawn step (documented
    behavior, so the temperature trajectory is unchanged).
    """

    def test_attempted_plus_skipped_equals_steps(self, torus, graph):
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=3000, seed=1
        )
        assert result.attempted_moves + result.skipped_moves == 3000
        # On 16 threads 1/16 of draws collide; with 3000 steps both
        # counters are essentially certain to be nonzero.
        assert result.skipped_moves > 0
        assert result.attempted_moves < 3000
        assert result.accepted_moves <= result.attempted_moves

    def test_single_thread_skips_every_step(self):
        # Degenerate machine: both draws always collide, so nothing is
        # ever attempted — previously this reported 50 "attempts".
        from repro.topology.graphs import ring_graph

        torus = Torus(radix=2, dimensions=1)
        graph = ring_graph(2)
        result = anneal_mapping(
            graph, torus, identity_mapping(2), steps=50, seed=0
        )
        assert result.attempted_moves + result.skipped_moves == 50
        assert result.accepted_moves <= result.attempted_moves


class TestReferenceParity:
    """The vectorized annealer against the loop-based specification."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_identical_to_reference(self, torus, graph, seed):
        from repro.mapping.reference import reference_anneal_mapping

        start = random_mapping(16, seed=seed + 20)
        fast = anneal_mapping(graph, torus, start, steps=1500, seed=seed)
        slow = reference_anneal_mapping(
            graph, torus, start, steps=1500, seed=seed
        )
        assert fast == slow

    def test_parity_on_irregular_pattern(self, torus):
        from repro.mapping.reference import reference_anneal_mapping
        from repro.topology.graphs import star_graph

        start = random_mapping(16, seed=8)
        graph = star_graph(16)
        fast = anneal_mapping(graph, torus, start, steps=800, seed=5)
        slow = reference_anneal_mapping(graph, torus, start, steps=800, seed=5)
        assert fast == slow

    def test_memory_guard_fallback_is_identical(self, torus, graph):
        # With the distance table forced off, the annealer must take the
        # broadcast-distance fallback and still match bit for bit.
        import repro.topology.torus as torus_module

        start = random_mapping(16, seed=2)
        with_table = anneal_mapping(graph, torus, start, steps=800, seed=3)
        original = torus_module.DISTANCE_TABLE_MAX_NODES
        torus_module.DISTANCE_TABLE_MAX_NODES = 1
        try:
            without_table = anneal_mapping(
                graph, torus, start, steps=800, seed=3
            )
        finally:
            torus_module.DISTANCE_TABLE_MAX_NODES = original
        assert with_table == without_table

    def test_hill_climber_matches_reference(self, torus, graph):
        from repro.mapping.optimize import optimize_mapping
        from repro.mapping.reference import reference_optimize_mapping

        start = random_mapping(16, seed=9)
        for maximize in (False, True):
            fast = optimize_mapping(
                graph, torus, start, steps=1000, seed=4, maximize=maximize
            )
            slow = reference_optimize_mapping(
                graph, torus, start, steps=1000, seed=4, maximize=maximize
            )
            assert fast == slow

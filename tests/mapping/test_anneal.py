"""Tests for simulated-annealing mapping optimization."""

import pytest

from repro.errors import MappingError
from repro.mapping.anneal import anneal_mapping
from repro.mapping.evaluate import average_distance
from repro.mapping.optimize import minimize_distance
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture
def torus():
    return Torus(radix=4, dimensions=2)


@pytest.fixture
def graph():
    return torus_neighbor_graph(4, 2)


class TestAnnealing:
    def test_improves_random_start(self, torus, graph):
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=4000, seed=1
        )
        assert result.distance < result.initial_distance

    def test_reported_distance_matches_mapping(self, torus, graph):
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=2000, seed=1
        )
        assert result.distance == pytest.approx(
            average_distance(graph, result.mapping, torus)
        )

    def test_returns_best_not_final(self, torus, graph):
        # best_distance is the reported distance by construction.
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=2000, seed=1
        )
        assert result.distance == result.best_distance

    def test_deterministic(self, torus, graph):
        a = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=1500, seed=42
        )
        b = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=1500, seed=42
        )
        assert a.mapping == b.mapping

    def test_at_least_as_good_as_hill_climbing_on_average(self, torus, graph):
        # Same budget, several seeds: annealing should not lose overall.
        anneal_total = 0.0
        climb_total = 0.0
        for seed in range(4):
            start = random_mapping(16, seed=seed)
            anneal_total += anneal_mapping(
                graph, torus, start, steps=4000, seed=seed
            ).distance
            climb_total += minimize_distance(
                graph, torus, start, steps=4000, seed=seed
            ).distance
        assert anneal_total <= climb_total + 0.4

    def test_result_is_bijective(self, torus, graph):
        result = anneal_mapping(
            graph, torus, random_mapping(16, seed=7), steps=500, seed=1
        )
        assert result.mapping.is_bijective

    @pytest.mark.parametrize("kwargs", [
        {"steps": -1},
        {"cooling": 1.0},
        {"cooling": 0.0},
        {"initial_temperature": 0.0},
    ])
    def test_rejects_bad_parameters(self, torus, graph, kwargs):
        with pytest.raises(MappingError):
            anneal_mapping(
                graph, torus, identity_mapping(16), seed=1, **kwargs
            )

    def test_rejects_mismatched_sizes(self, torus, graph):
        with pytest.raises(MappingError):
            anneal_mapping(graph, torus, identity_mapping(8), steps=10)

"""Tests for recursive-bisection placement."""

import pytest

from repro.errors import MappingError
from repro.mapping.evaluate import average_distance
from repro.mapping.partition import recursive_bisection_mapping
from repro.mapping.strategies import random_mapping
from repro.topology.graphs import (
    nearest_neighbor_grid_graph,
    ring_graph,
    torus_neighbor_graph,
)
from repro.topology.torus import Torus


@pytest.fixture
def torus():
    return Torus(radix=8, dimensions=2)


class TestRecursiveBisection:
    def test_produces_bijection(self, torus):
        graph = torus_neighbor_graph(8, 2)
        mapping = recursive_bisection_mapping(graph, torus)
        assert mapping.is_bijective

    @pytest.mark.parametrize("use_networkx", [True, False])
    def test_beats_random_on_local_graphs(self, torus, use_networkx):
        graph = nearest_neighbor_grid_graph(8, 8)
        mapping = recursive_bisection_mapping(
            graph, torus, use_networkx=use_networkx
        )
        placed = average_distance(graph, mapping, torus)
        random_avg = sum(
            average_distance(graph, random_mapping(64, seed=s), torus)
            for s in range(4)
        ) / 4
        assert placed < random_avg

    def test_ring_stays_local(self, torus):
        graph = ring_graph(64)
        mapping = recursive_bisection_mapping(graph, torus)
        assert average_distance(graph, mapping, torus) < 3.0

    def test_greedy_fallback_is_deterministic(self, torus):
        graph = nearest_neighbor_grid_graph(8, 8)
        a = recursive_bisection_mapping(graph, torus, use_networkx=False)
        b = recursive_bisection_mapping(graph, torus, use_networkx=False)
        assert a == b

    def test_rejects_size_mismatch(self, torus):
        graph = nearest_neighbor_grid_graph(4, 4)
        with pytest.raises(MappingError):
            recursive_bisection_mapping(graph, torus)

    def test_small_machine(self):
        torus = Torus(radix=2, dimensions=2)
        graph = ring_graph(4)
        mapping = recursive_bisection_mapping(graph, torus)
        assert mapping.is_bijective

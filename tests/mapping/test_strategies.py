"""Tests for the concrete mapping strategies."""

import pytest

from repro.errors import MappingError
from repro.mapping.evaluate import average_distance
from repro.mapping.strategies import (
    bit_reversal_mapping,
    block_collocation_mapping,
    dimension_scale_mapping,
    identity_mapping,
    random_mapping,
    shear_mapping,
    stride_mapping,
    transpose_mapping,
)
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture
def torus():
    return Torus(radix=8, dimensions=2)


@pytest.fixture
def graph():
    return torus_neighbor_graph(8, 2)


class TestIdentity:
    def test_is_bijective(self):
        assert identity_mapping(64).is_bijective

    def test_ideal_for_torus_workload(self, torus, graph):
        # Every application edge is one network hop.
        assert average_distance(graph, identity_mapping(64), torus) == pytest.approx(
            1.0
        )


class TestRandom:
    def test_is_bijective(self):
        assert random_mapping(64, seed=0).is_bijective

    def test_deterministic_per_seed(self):
        assert random_mapping(64, seed=5) == random_mapping(64, seed=5)

    def test_different_seeds_differ(self):
        assert random_mapping(64, seed=5) != random_mapping(64, seed=6)

    def test_distance_near_eq17_expectation(self, torus, graph):
        # Footnote 2: random mappings at 64 nodes give ~4.06 hops expected.
        distances = [
            average_distance(graph, random_mapping(64, seed=s), torus)
            for s in range(8)
        ]
        mean = sum(distances) / len(distances)
        assert 3.5 < mean < 4.6


class TestStride:
    def test_unit_stride_is_identity(self):
        assert stride_mapping(64, 1) == identity_mapping(64)

    def test_rejects_non_coprime_stride(self):
        with pytest.raises(MappingError):
            stride_mapping(64, 8)

    def test_coprime_stride_is_bijective(self):
        assert stride_mapping(64, 9).is_bijective


class TestDimensionScale:
    def test_unit_multipliers_are_identity(self, torus):
        assert dimension_scale_mapping(torus, [1, 1]) == identity_mapping(64)

    def test_stretch_three_gives_three_hop_edges(self, torus, graph):
        mapping = dimension_scale_mapping(torus, [3, 3])
        assert average_distance(graph, mapping, torus) == pytest.approx(3.0)

    def test_mixed_multipliers(self, torus, graph):
        # x-edges stretched to 3 hops, y-edges stay at 1: average 2.
        mapping = dimension_scale_mapping(torus, [3, 1])
        assert average_distance(graph, mapping, torus) == pytest.approx(2.0)

    def test_rejects_non_coprime_multiplier(self, torus):
        with pytest.raises(MappingError):
            dimension_scale_mapping(torus, [2, 1])

    def test_rejects_wrong_multiplier_count(self, torus):
        with pytest.raises(MappingError):
            dimension_scale_mapping(torus, [3])


class TestTransposeAndShear:
    def test_transpose_is_automorphism(self, torus, graph):
        mapping = transpose_mapping(torus)
        assert mapping.is_bijective
        assert average_distance(graph, mapping, torus) == pytest.approx(1.0)

    def test_shear_is_bijective(self, torus):
        assert shear_mapping(torus, factor=1).is_bijective

    def test_shear_stretches_sheared_dimension_only(self, torus, graph):
        # x-edges stay 1 hop; y-edges become diagonal (2 hops): mean 1.5.
        mapping = shear_mapping(torus, factor=1)
        assert average_distance(graph, mapping, torus) == pytest.approx(1.5)

    def test_shear_needs_two_dimensions(self):
        with pytest.raises(MappingError):
            shear_mapping(Torus(radix=8, dimensions=1))


class TestBitReversal:
    def test_is_bijective(self, torus):
        assert bit_reversal_mapping(torus).is_bijective

    def test_involution(self, torus):
        mapping = bit_reversal_mapping(torus)
        twice = mapping.compose(mapping)
        assert twice == identity_mapping(64)

    def test_spreads_neighbors(self, torus, graph):
        mapping = bit_reversal_mapping(torus)
        assert average_distance(graph, mapping, torus) > 2.0

    def test_rejects_non_power_of_two_radix(self):
        with pytest.raises(MappingError):
            bit_reversal_mapping(Torus(radix=6, dimensions=2))


class TestBlockCollocation:
    def test_two_threads_per_processor(self):
        mapping = block_collocation_mapping(8, 4)
        assert mapping.load() == {0: 2, 1: 2, 2: 2, 3: 2}
        assert mapping.processor_of(0) == mapping.processor_of(1)

    def test_rejects_non_multiple(self):
        with pytest.raises(MappingError):
            block_collocation_mapping(7, 4)

    def test_rejects_fewer_threads_than_processors(self):
        with pytest.raises(MappingError):
            block_collocation_mapping(2, 4)

"""Tests for the hill-climbing mapping optimizer."""

import pytest

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.mapping.evaluate import average_distance
from repro.mapping.optimize import (
    maximize_distance,
    minimize_distance,
    optimize_mapping,
)
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture
def torus():
    return Torus(radix=4, dimensions=2)


@pytest.fixture
def graph():
    return torus_neighbor_graph(4, 2)


class TestMinimize:
    def test_improves_random_start(self, torus, graph):
        start = random_mapping(16, seed=7)
        result = minimize_distance(graph, torus, start, steps=3000, seed=1)
        assert result.distance < result.initial_distance

    def test_reported_distance_matches_reevaluation(self, torus, graph):
        result = minimize_distance(
            graph, torus, random_mapping(16, seed=7), steps=1500, seed=1
        )
        assert result.distance == pytest.approx(
            average_distance(graph, result.mapping, torus)
        )

    def test_cannot_improve_ideal(self, torus, graph):
        result = minimize_distance(
            graph, torus, identity_mapping(16), steps=500, seed=1
        )
        assert result.distance == pytest.approx(1.0)
        assert result.accepted_swaps == 0

    def test_result_is_bijective(self, torus, graph):
        result = minimize_distance(
            graph, torus, random_mapping(16, seed=7), steps=500, seed=1
        )
        assert result.mapping.is_bijective


class TestMaximize:
    def test_worsens_random_start(self, torus, graph):
        start = random_mapping(16, seed=7)
        result = maximize_distance(graph, torus, start, steps=3000, seed=1)
        assert result.distance > result.initial_distance

    def test_beats_random_expectation(self, torus, graph):
        # On a 4x4 torus, random mappings average ~2.1 hops; an
        # adversarial mapping should clearly exceed that.
        result = maximize_distance(
            graph, torus, random_mapping(16, seed=7), steps=4000, seed=1
        )
        assert result.distance > 2.5


class TestDeterminismAndValidation:
    def test_deterministic_given_seed(self, torus, graph):
        a = optimize_mapping(
            graph, torus, random_mapping(16, seed=7), steps=800, seed=42
        )
        b = optimize_mapping(
            graph, torus, random_mapping(16, seed=7), steps=800, seed=42
        )
        assert a.mapping == b.mapping
        assert a.distance == b.distance

    def test_zero_steps_returns_start(self, torus, graph):
        start = random_mapping(16, seed=7)
        result = optimize_mapping(graph, torus, start, steps=0, seed=1)
        assert result.mapping == start
        assert result.attempted_swaps == 0

    def test_rejects_negative_steps(self, torus, graph):
        with pytest.raises(MappingError):
            optimize_mapping(
                graph, torus, identity_mapping(16), steps=-1, seed=1
            )

    def test_rejects_non_bijective_start(self, torus, graph):
        squashed = Mapping(assignment=(0,) * 16, processors=16)
        with pytest.raises(MappingError):
            optimize_mapping(graph, torus, squashed, steps=10, seed=1)

    def test_rejects_size_mismatches(self, torus, graph):
        with pytest.raises(MappingError):
            optimize_mapping(graph, torus, identity_mapping(8), steps=10, seed=1)
        with pytest.raises(MappingError):
            optimize_mapping(
                graph, Torus(radix=8, dimensions=2), identity_mapping(16),
                steps=10, seed=1,
            )

    def test_swap_accounting(self, torus, graph):
        result = optimize_mapping(
            graph, torus, random_mapping(16, seed=7), steps=300, seed=3
        )
        assert 0 <= result.accepted_swaps <= result.attempted_swaps == 300

"""Tests for the embedding-oriented mapping strategies (snake/gray/shift)."""

import pytest

from repro.errors import MappingError
from repro.mapping.evaluate import average_distance
from repro.mapping.strategies import (
    gray_code_mapping,
    identity_mapping,
    rotation_mapping,
    snake_mapping,
)
from repro.topology.graphs import ring_graph, torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture
def torus():
    return Torus(radix=8, dimensions=2)


class TestSnake:
    def test_bijective(self, torus):
        assert snake_mapping(torus).is_bijective

    def test_embeds_a_ring_perfectly(self, torus):
        # Boustrophedon + torus wraparound: every ring edge is one hop.
        ring = ring_graph(64)
        assert average_distance(ring, snake_mapping(torus), torus) == 1.0

    def test_beats_row_major_for_rings(self, torus):
        ring = ring_graph(64)
        snake = average_distance(ring, snake_mapping(torus), torus)
        row_major = average_distance(ring, identity_mapping(64), torus)
        assert snake < row_major

    def test_rejects_non_2d(self):
        with pytest.raises(MappingError):
            snake_mapping(Torus(radix=8, dimensions=1))


class TestGrayCode:
    def test_bijective(self, torus):
        assert gray_code_mapping(torus).is_bijective

    def test_rejects_non_power_of_two(self):
        with pytest.raises(MappingError):
            gray_code_mapping(Torus(radix=6, dimensions=2))

    def test_keeps_sequential_indices_close(self, torus):
        # Gray order moves one ring step per index increment within a
        # digit; average ring distance stays small for a ring workload.
        ring = ring_graph(64)
        gray = average_distance(ring, gray_code_mapping(torus), torus)
        assert gray < 3.0


class TestRotation:
    def test_is_automorphism(self, torus):
        graph = torus_neighbor_graph(8, 2)
        shifted = rotation_mapping(torus, [3, 5])
        assert shifted.is_bijective
        assert average_distance(graph, shifted, torus) == pytest.approx(1.0)

    def test_translation_invariance_of_measurements(self):
        # A torus shift must not change any measured quantity: the
        # machine is homogeneous.
        from repro.sim.config import SimulationConfig
        from repro.sim.machine import Machine
        from repro.workload.synthetic import build_programs

        torus = Torus(radix=4, dimensions=2)
        graph = torus_neighbor_graph(4, 2)
        config = SimulationConfig(
            radix=4, dimensions=2,
            warmup_network_cycles=500, measure_network_cycles=2500,
        )

        def run(mapping):
            programs = build_programs(graph, 1, config.compute_cycles, 0.5)
            return Machine(config, mapping, programs).run()

        base = run(identity_mapping(16))
        shifted = run(rotation_mapping(torus, [1, 2]))
        assert shifted.mean_message_hops == pytest.approx(
            base.mean_message_hops, abs=0.02
        )
        # Same distance structure -> statistically equivalent latency.
        assert shifted.mean_message_latency == pytest.approx(
            base.mean_message_latency, rel=0.1
        )

    def test_zero_offset_is_identity(self, torus):
        assert rotation_mapping(torus, [0, 0]) == identity_mapping(64)

    def test_rejects_wrong_offset_count(self, torus):
        with pytest.raises(MappingError):
            rotation_mapping(torus, [1])

"""Tests for the Section 3.2-style mapping suite."""

import pytest

from repro.mapping.evaluate import average_distance
from repro.mapping.families import paper_mapping_suite
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture(scope="module")
def torus():
    return Torus(radix=8, dimensions=2)


@pytest.fixture(scope="module")
def suite(torus):
    return paper_mapping_suite(torus, adversarial_steps=3000)


class TestSuiteShape:
    def test_sorted_by_distance(self, suite):
        distances = [named.distance for named in suite]
        assert distances == sorted(distances)

    def test_starts_at_ideal_single_hop(self, suite):
        assert suite[0].name == "ideal"
        assert suite[0].distance == pytest.approx(1.0)

    def test_spans_one_to_six_hops(self, suite):
        # Section 3.2: distances "ranged from one to just over six".
        assert suite[0].distance == pytest.approx(1.0)
        assert suite[-1].distance > 5.5

    def test_has_paper_scale_coverage(self, suite):
        # Several intermediate points between the extremes, as the nine
        # mappings of the paper provide.
        assert len(suite) >= 6
        intermediate = [n for n in suite if 1.5 < n.distance < 5.0]
        assert len(intermediate) >= 3

    def test_all_bijective(self, suite):
        assert all(named.mapping.is_bijective for named in suite)

    def test_distances_match_reevaluation(self, suite, torus):
        graph = torus_neighbor_graph(8, 2)
        for named in suite:
            assert named.distance == pytest.approx(
                average_distance(graph, named.mapping, torus)
            )

    def test_deterministic(self, torus):
        again = paper_mapping_suite(torus, adversarial_steps=3000)
        first = paper_mapping_suite(torus, adversarial_steps=3000)
        assert [n.distance for n in again] == [n.distance for n in first]


class TestOtherShapes:
    def test_small_torus_suite_still_valid(self):
        torus = Torus(radix=4, dimensions=2)
        suite = paper_mapping_suite(torus, adversarial_steps=1000)
        assert suite[0].distance == pytest.approx(1.0)
        assert suite[-1].distance > 1.5

    def test_non_power_of_two_radix_omits_bit_reverse(self):
        torus = Torus(radix=5, dimensions=2)
        suite = paper_mapping_suite(torus, adversarial_steps=500)
        assert all(named.name != "bit-reverse" for named in suite)
        assert suite[0].distance == pytest.approx(1.0)

"""Tests for mapping evaluation (average communication distance)."""

import pytest

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.mapping.evaluate import (
    average_distance,
    distance_histogram,
    evaluate,
)
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.topology.graphs import CommunicationGraph, torus_neighbor_graph
from repro.topology.torus import Torus


@pytest.fixture
def torus():
    return Torus(radix=4, dimensions=2)


@pytest.fixture
def graph():
    return torus_neighbor_graph(4, 2)


class TestAverageDistance:
    def test_identity_on_matching_graph_is_one(self, torus, graph):
        assert average_distance(graph, identity_mapping(16), torus) == 1.0

    def test_weighted_average(self, torus):
        # Two edges: one mapped at distance 1 (weight 3), one at distance
        # 2 (weight 1): average = (3*1 + 1*2)/4.
        graph = CommunicationGraph(
            threads=3, weights={(0, 1): 3.0, (0, 2): 1.0}
        )
        mapping = Mapping(assignment=(0, 1, 2), processors=16)
        assert average_distance(graph, mapping, torus) == pytest.approx(1.25)

    def test_collocation_contributes_zero(self, torus):
        graph = CommunicationGraph(threads=2, weights={(0, 1): 1.0})
        mapping = Mapping(assignment=(5, 5), processors=16)
        assert average_distance(graph, mapping, torus) == 0.0

    def test_rejects_thread_count_mismatch(self, torus, graph):
        with pytest.raises(MappingError):
            average_distance(graph, identity_mapping(8), torus)

    def test_rejects_processor_count_mismatch(self, graph):
        with pytest.raises(MappingError):
            average_distance(
                graph, identity_mapping(16), Torus(radix=8, dimensions=2)
            )

    def test_rejects_empty_graph(self, torus):
        graph = CommunicationGraph(threads=16, weights={})
        with pytest.raises(MappingError):
            average_distance(graph, identity_mapping(16), torus)


class TestHistogram:
    def test_identity_histogram_all_at_one(self, torus, graph):
        histogram = distance_histogram(graph, identity_mapping(16), torus)
        assert set(histogram) == {1}
        assert histogram[1] == pytest.approx(graph.total_weight)

    def test_histogram_total_weight_preserved(self, torus, graph):
        mapping = random_mapping(16, seed=3)
        histogram = distance_histogram(graph, mapping, torus)
        assert sum(histogram.values()) == pytest.approx(graph.total_weight)


class TestEvaluate:
    def test_summary_consistent_with_average(self, torus, graph):
        mapping = random_mapping(16, seed=3)
        summary = evaluate(graph, mapping, torus)
        assert summary.average == pytest.approx(
            average_distance(graph, mapping, torus)
        )

    def test_min_max_bracket_average(self, torus, graph):
        summary = evaluate(graph, random_mapping(16, seed=3), torus)
        assert summary.minimum <= summary.average <= summary.maximum

    def test_per_dimension_is_kd(self, torus, graph):
        summary = evaluate(graph, random_mapping(16, seed=3), torus)
        assert summary.per_dimension == pytest.approx(summary.average / 2)

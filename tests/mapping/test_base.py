"""Tests for the Mapping abstraction."""

import pytest

from repro.errors import MappingError
from repro.mapping.base import Mapping


class TestConstruction:
    def test_rejects_empty_assignment(self):
        with pytest.raises(MappingError):
            Mapping(assignment=(), processors=4)

    def test_rejects_out_of_range_processor(self):
        with pytest.raises(MappingError):
            Mapping(assignment=(0, 4), processors=4)

    def test_rejects_bad_processor_count(self):
        with pytest.raises(MappingError):
            Mapping(assignment=(0,), processors=0)

    def test_from_sequence_coerces_ints(self):
        mapping = Mapping.from_sequence([0.0, 1.0], processors=2)
        assert mapping.assignment == (0, 1)


class TestIntrospection:
    @pytest.fixture
    def collocated(self):
        return Mapping(assignment=(0, 0, 1, 1), processors=2)

    def test_threads_count(self, collocated):
        assert collocated.threads == 4

    def test_processor_of(self, collocated):
        assert collocated.processor_of(2) == 1

    def test_processor_of_rejects_bad_thread(self, collocated):
        with pytest.raises(MappingError):
            collocated.processor_of(4)

    def test_threads_on(self, collocated):
        assert collocated.threads_on(0) == [0, 1]

    def test_threads_on_rejects_bad_processor(self, collocated):
        with pytest.raises(MappingError):
            collocated.threads_on(2)

    def test_load(self, collocated):
        assert collocated.load() == {0: 2, 1: 2}

    def test_bijectivity_detection(self, collocated):
        assert not collocated.is_bijective
        assert Mapping(assignment=(1, 0), processors=2).is_bijective

    def test_require_bijective(self, collocated):
        with pytest.raises(MappingError):
            collocated.require_bijective()
        bijection = Mapping(assignment=(1, 0), processors=2)
        assert bijection.require_bijective() is bijection


class TestTransformation:
    def test_compose_applies_permutation(self):
        mapping = Mapping(assignment=(0, 1, 2), processors=3)
        rotate = Mapping(assignment=(1, 2, 0), processors=3)
        assert mapping.compose(rotate).assignment == (1, 2, 0)

    def test_compose_requires_bijection(self):
        mapping = Mapping(assignment=(0, 1), processors=2)
        squash = Mapping(assignment=(0, 0), processors=2)
        with pytest.raises(MappingError):
            mapping.compose(squash)

    def test_compose_requires_matching_sizes(self):
        mapping = Mapping(assignment=(0, 1, 2), processors=3)
        small = Mapping(assignment=(1, 0), processors=2)
        with pytest.raises(MappingError):
            mapping.compose(small)

    def test_swapped(self):
        mapping = Mapping(assignment=(0, 1, 2), processors=3)
        swapped = mapping.swapped(0, 2)
        assert swapped.assignment == (2, 1, 0)
        # Original unchanged.
        assert mapping.assignment == (0, 1, 2)

    def test_swapped_same_thread_is_identity(self):
        mapping = Mapping(assignment=(0, 1), processors=2)
        assert mapping.swapped(1, 1) is mapping

    def test_items(self):
        mapping = Mapping(assignment=(2, 0), processors=3)
        assert list(mapping.items()) == [(0, 2), (1, 0)]

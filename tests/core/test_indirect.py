"""Tests for the indirect (multistage/UCL) network model."""

import pytest

from repro.core.combined import solve
from repro.core.indirect import IndirectNetworkModel
from repro.core.node import NodeModel
from repro.errors import ParameterError, SaturationError


@pytest.fixture
def butterfly():
    return IndirectNetworkModel(switch_radix=4, message_size=12.0)


@pytest.fixture
def node():
    return NodeModel(sensitivity=3.2, intercept=90.0, messages_per_transaction=3.2)


class TestConstruction:
    def test_rejects_radix_below_two(self):
        with pytest.raises(ParameterError):
            IndirectNetworkModel(switch_radix=1)

    def test_rejects_nonpositive_message_size(self):
        with pytest.raises(ParameterError):
            IndirectNetworkModel(message_size=0.0)


class TestStages:
    def test_exact_powers(self, butterfly):
        assert butterfly.stages_for(4) == 1
        assert butterfly.stages_for(16) == 2
        assert butterfly.stages_for(1024) == 5

    def test_non_powers_round_up(self, butterfly):
        assert butterfly.stages_for(100) == 4  # 4^3 = 64 < 100 <= 256

    def test_binary_butterfly(self):
        radix2 = IndirectNetworkModel(switch_radix=2)
        assert radix2.stages_for(1024) == 10

    def test_rejects_tiny_machines(self, butterfly):
        with pytest.raises(ParameterError):
            butterfly.stages_for(1)


class TestUniformLatency:
    def test_zero_load_latency_is_stages_plus_b(self, butterfly):
        assert butterfly.zero_load_latency(5) == pytest.approx(17.0)

    def test_latency_grows_with_machine_size(self, butterfly):
        # The UCL defect: everyone pays more as N grows.
        small = butterfly.message_latency(0.01, butterfly.stages_for(64))
        large = butterfly.message_latency(0.01, butterfly.stages_for(65536))
        assert large > small

    def test_per_stage_latency_at_least_one(self, butterfly):
        assert butterfly.per_hop_latency(0.0, 5) == pytest.approx(1.0)

    def test_banyan_conflict_factor(self, butterfly):
        assert butterfly.contention_geometry(5) == pytest.approx(0.75)

    def test_saturation_at_link_capacity(self, butterfly):
        with pytest.raises(SaturationError):
            butterfly.per_hop_latency(1.0 / 12.0, 5)

    def test_latency_monotone_in_rate(self, butterfly):
        cap = butterfly.max_rate(5)
        latencies = [
            butterfly.message_latency(load * cap, 5)
            for load in (0.1, 0.4, 0.7, 0.9)
        ]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))


class TestCombinedModelIntegration:
    def test_solver_closes_the_loop(self, node, butterfly):
        point = solve(node, butterfly, float(butterfly.stages_for(1024)))
        node_side = node.message_latency_at_rate(point.message_rate)
        assert point.message_latency == pytest.approx(node_side, rel=1e-9)
        assert 0 < point.utilization < 1

    def test_rates_fall_with_machine_size(self, node, butterfly):
        rates = [
            solve(node, butterfly, float(butterfly.stages_for(n))).message_rate
            for n in (64, 4096, 262144)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_no_node_channel_term(self, butterfly):
        assert butterfly.node_channel_delay(0.05) == 0.0

    def test_describe_is_consistent(self, butterfly):
        info = butterfly.describe(0.02, 5)
        assert info["T_m"] == pytest.approx(butterfly.message_latency(0.02, 5))
        assert info["rho"] == pytest.approx(0.24)


class TestUclNuclExperiment:
    def test_experiment_runs_and_shapes_hold(self):
        from repro.experiments.ucl_nucl import run

        result = run(quick=True)
        ideal = result.data["ideal"]
        random_ = result.data["random"]
        ucl = result.data["ucl"]
        # Ideal NUCL beats UCL at every size, by a growing factor.
        ratios = [i / u for i, u in zip(ideal, ucl)]
        assert all(r > 1.0 for r in ratios)
        assert ratios[-1] > ratios[0]
        # The bandwidth-rich butterfly overtakes the random mapping at
        # scale.
        assert random_[-1] / ucl[-1] < 1.0

    def test_registered(self):
        from repro.experiments.runner import experiment_ids

        assert "ucl-vs-nucl" in experiment_ids()

"""Tests for the shared-bus model."""

import pytest

from repro.core.bus import SharedBusModel
from repro.core.combined import solve
from repro.core.node import NodeModel
from repro.errors import ParameterError, SaturationError


@pytest.fixture
def bus():
    return SharedBusModel(message_size=12.0, arbitration_cycles=1.0)


@pytest.fixture
def node():
    return NodeModel(sensitivity=1.6, intercept=90.0,
                     messages_per_transaction=3.2)


class TestConstruction:
    def test_rejects_nonpositive_message_size(self):
        with pytest.raises(ParameterError):
            SharedBusModel(message_size=0.0)

    def test_rejects_negative_arbitration(self):
        with pytest.raises(ParameterError):
            SharedBusModel(arbitration_cycles=-1.0)


class TestBusPhysics:
    def test_utilization_aggregates_all_nodes(self, bus):
        assert bus.channel_utilization(0.001, 32) == pytest.approx(0.384)

    def test_saturation_rate_falls_as_one_over_n(self, bus):
        assert bus.saturation_rate(10) == pytest.approx(
            2.0 * bus.saturation_rate(20)
        )

    def test_zero_load_latency_independent_of_size(self, bus):
        assert bus.zero_load_latency(4) == bus.zero_load_latency(4096)
        assert bus.zero_load_latency(4) == pytest.approx(13.0)

    def test_latency_blows_up_near_saturation(self, bus):
        rate = 0.95 * bus.saturation_rate(64)
        low = bus.message_latency(0.1 * bus.saturation_rate(64), 64)
        high = bus.message_latency(rate, 64)
        assert high > 5 * low

    def test_saturated_bus_raises(self, bus):
        with pytest.raises(SaturationError):
            bus.message_latency(bus.saturation_rate(64), 64)

    def test_rejects_bad_node_count(self, bus):
        with pytest.raises(ParameterError):
            bus.zero_load_latency(0)


class TestCombinedModelIntegration:
    def test_solver_closes_the_loop(self, node, bus):
        point = solve(node, bus, 64.0)
        node_side = node.message_latency_at_rate(point.message_rate)
        assert point.message_latency == pytest.approx(node_side, rel=1e-9)
        assert 0 < point.utilization < 1

    def test_per_node_rate_collapses_with_machine_size(self, node, bus):
        rates = [solve(node, bus, float(n)).message_rate for n in (8, 64, 512)]
        assert rates[0] > rates[1] > rates[2]
        # Deep saturation: aggregate throughput pinned, per node ~ 1/N.
        assert rates[2] == pytest.approx(rates[1] / 8, rel=0.35)

    def test_organizations_experiment(self):
        from repro.experiments.organizations import run

        result = run(quick=True)
        bus_series = result.data["bus"]
        ideal_series = result.data["torus_ideal"]
        # Bus per-node throughput falls monotonically and ends far below
        # the locality-exploiting torus.
        assert all(b <= a + 1e-12 for a, b in zip(bus_series, bus_series[1:]))
        assert bus_series[-1] < 0.1 * ideal_series[-1]

    def test_registered(self):
        from repro.experiments.runner import experiment_ids

        assert "organizations" in experiment_ids()

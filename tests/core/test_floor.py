"""Tests for the Eq 4 issue-time floor solver."""

import pytest

from repro.core.application import ApplicationModel
from repro.core.combined import solve, solve_with_floor
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.core.system import SystemModel
from repro.core.transaction import TransactionModel
from repro.errors import ParameterError, SaturationError
from repro.units import ALEWIFE_CLOCKS


@pytest.fixture
def network():
    return TorusNetworkModel(dimensions=2, message_size=12.0)


class TestSolveWithFloor:
    def test_inactive_floor_returns_unconstrained_point(self, network):
        node = NodeModel(sensitivity=1.6, intercept=100.0,
                         messages_per_transaction=3.2)
        free = solve(node, network, 8.0)
        floored = solve_with_floor(node, network, 8.0, min_issue_time=10.0)
        assert floored.message_rate == pytest.approx(free.message_rate)

    def test_binding_floor_pins_issue_time(self, network):
        # A very latency-tolerant node at a short distance would issue
        # faster than the floor allows.
        node = NodeModel(sensitivity=12.8, intercept=10.0,
                         messages_per_transaction=3.2)
        free = solve(node, network, 1.0)
        floor = free.issue_time * 2.0
        floored = solve_with_floor(node, network, 1.0, min_issue_time=floor)
        assert floored.issue_time == pytest.approx(floor)
        assert floored.message_rate < free.message_rate

    def test_floored_latency_reads_off_network_curve(self, network):
        node = NodeModel(sensitivity=12.8, intercept=10.0,
                         messages_per_transaction=3.2)
        free = solve(node, network, 1.0)
        floor = free.issue_time * 2.0
        floored = solve_with_floor(node, network, 1.0, min_issue_time=floor)
        assert floored.message_latency == pytest.approx(
            network.message_latency(floored.message_rate, 1.0)
        )

    def test_rejects_nonpositive_floor(self, network):
        node = NodeModel(sensitivity=1.6, intercept=50.0)
        with pytest.raises(ParameterError):
            solve_with_floor(node, network, 4.0, min_issue_time=0.0)

    def test_pinned_point_always_feasible(self, network):
        # A binding floor lowers the rate below the free solution's, so
        # the pinned point never saturates.
        node = NodeModel(sensitivity=12.8, intercept=10.0,
                         messages_per_transaction=3.2)
        free = solve(node, network, 1.0)
        floored = solve_with_floor(
            node, network, 1.0, min_issue_time=free.issue_time * 3.0
        )
        assert floored.utilization < 1.0


class TestSystemModelFloor:
    @pytest.fixture
    def tolerant_system(self):
        # Eight contexts, tiny grain, slow context switch: the floor
        # t_t >= T_r + T_s genuinely binds at d = 1.
        return SystemModel(
            application=ApplicationModel(
                grain=2.0, contexts=8.0, switch_time=30.0
            ),
            transaction=TransactionModel(
                critical_messages=2.0, messages_per_transaction=3.2,
                fixed_overhead=10.0,
            ),
            network=TorusNetworkModel(
                dimensions=2, message_size=12.0,
                node_channel_contention=True,
            ),
            clocks=ALEWIFE_CLOCKS,
        )

    def test_floor_binds_for_extreme_multithreading(self, tolerant_system):
        free = tolerant_system.operating_point(1.0)
        floored = tolerant_system.operating_point(
            1.0, respect_issue_floor=True
        )
        floor_network = tolerant_system.clocks.to_network(
            tolerant_system.application.min_issue_time
        )
        assert free.issue_time < floor_network
        assert floored.issue_time == pytest.approx(floor_network)

    def test_floor_irrelevant_at_long_distance(self, tolerant_system):
        free = tolerant_system.operating_point(50.0)
        floored = tolerant_system.operating_point(
            50.0, respect_issue_floor=True
        )
        assert floored.message_rate == pytest.approx(free.message_rate)

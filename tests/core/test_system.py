"""Tests for the SystemModel facade."""

import pytest

from repro.core.application import ApplicationModel
from repro.core.network import TorusNetworkModel
from repro.core.system import SystemModel
from repro.core.transaction import TransactionModel
from repro.units import ALEWIFE_CLOCKS


@pytest.fixture
def system():
    return SystemModel(
        application=ApplicationModel(grain=8.0, contexts=2.0, switch_time=11.0),
        transaction=TransactionModel(
            critical_messages=2.0, messages_per_transaction=3.2, fixed_overhead=80.0
        ),
        network=TorusNetworkModel(dimensions=2, message_size=12.0),
        clocks=ALEWIFE_CLOCKS,
    )


class TestComposition:
    def test_node_has_expected_sensitivity(self, system):
        assert system.latency_sensitivity == pytest.approx(2.0 * 3.2 / 2.0)

    def test_operating_point_satisfies_both_curves(self, system):
        point = system.operating_point(8.0)
        node_latency = system.node.message_latency_at_rate(point.message_rate)
        assert point.message_latency == pytest.approx(node_latency, rel=1e-9)

    def test_operating_point_random_uses_eq17_distance(self, system):
        point = system.operating_point_random(4096)
        assert point.distance == pytest.approx(2 * 64**3 / (4 * 4095))

    def test_breakdown_totals_issue_time(self, system):
        point = system.operating_point(8.0)
        breakdown = system.breakdown(8.0)
        assert breakdown.total == pytest.approx(
            point.issue_time_processor(system.clocks), rel=1e-9
        )

    def test_limiting_per_hop_latency(self, system):
        expected = system.latency_sensitivity * 12.0 / 4.0
        assert system.limiting_per_hop_latency() == pytest.approx(expected)

    def test_per_hop_curve_lengths(self, system):
        samples = system.per_hop_curve([100, 1000, 10000])
        assert len(samples) == 3


class TestVariants:
    def test_with_contexts_changes_sensitivity_proportionally(self, system):
        doubled = system.with_contexts(4.0)
        assert doubled.latency_sensitivity == pytest.approx(
            2.0 * system.latency_sensitivity
        )

    def test_with_grain_scaled(self, system):
        scaled = system.with_grain_scaled(10.0)
        assert scaled.application.grain == pytest.approx(80.0)
        # Sensitivity is unchanged; only the intercept moves.
        assert scaled.latency_sensitivity == pytest.approx(
            system.latency_sensitivity
        )

    def test_with_network_slowdown_changes_clock_only(self, system):
        slowed = system.with_network_slowdown(2.0)
        assert slowed.clocks.network_speedup == pytest.approx(1.0)
        assert slowed.network == system.network

    def test_slowdown_hurts_absolute_performance(self, system):
        fast = system.operating_point(8.0)
        slow = system.with_network_slowdown(4.0).operating_point(8.0)
        # Compare in processor cycles: the slow network means fewer
        # transactions per processor cycle.
        assert slow.transaction_rate_processor(
            system.with_network_slowdown(4.0).clocks
        ) < fast.transaction_rate_processor(system.clocks)

    def test_slowdown_increases_locality_gain(self, system):
        # Table 1's headline: slower networks reward locality more.
        base_gain = system.expected_gain(1000).gain
        slow_gain = system.with_network_slowdown(4.0).expected_gain(1000).gain
        assert slow_gain > base_gain

    def test_with_dimensions_lowers_gain(self, system):
        # Section 4.2: higher-dimensional networks reduce the impact of
        # exploiting physical locality.
        two_d = system.expected_gain(4096).gain
        three_d = system.with_dimensions(3).expected_gain(4096).gain
        assert three_d < two_d

    def test_with_critical_messages(self, system):
        adjusted = system.with_critical_messages(2.3)
        assert adjusted.transaction.critical_messages == 2.3
        assert adjusted.latency_sensitivity < system.latency_sensitivity

    def test_without_network_extensions(self, system):
        base = system.without_network_extensions()
        assert not base.network.clamp_local
        assert not base.network.node_channel_contention

    def test_variants_do_not_mutate_original(self, system):
        original_sensitivity = system.latency_sensitivity
        system.with_contexts(4.0)
        system.with_network_slowdown(8.0)
        assert system.latency_sensitivity == original_sensitivity

"""Tests for the transaction model (paper Section 2.2, Eqs 7-8)."""

import pytest

from repro.core.transaction import TransactionModel
from repro.errors import ParameterError
from repro.units import ALEWIFE_CLOCKS, EQUAL_CLOCKS


@pytest.fixture
def coherence():
    # Alewife-like constants: c ~= 2, g = 3.2.
    return TransactionModel(
        critical_messages=2.0, messages_per_transaction=3.2, fixed_overhead=80.0
    )


class TestConstruction:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive_critical_messages(self, bad):
        with pytest.raises(ParameterError):
            TransactionModel(critical_messages=bad)

    @pytest.mark.parametrize("bad", [0.0, -2.0])
    def test_rejects_nonpositive_messages_per_transaction(self, bad):
        with pytest.raises(ParameterError):
            TransactionModel(messages_per_transaction=bad)

    def test_rejects_negative_fixed_overhead(self):
        with pytest.raises(ParameterError):
            TransactionModel(fixed_overhead=-1.0)

    def test_defaults_are_simple_request_reply(self):
        model = TransactionModel()
        assert model.critical_messages == 2.0
        assert model.messages_per_transaction == 2.0
        assert model.fixed_overhead == 0.0


class TestEq7:
    def test_latency_with_equal_clocks(self, coherence):
        # T_t = c*T_m + T_f with no conversion: 2*100 + 80 = 280.
        assert coherence.transaction_latency(100.0, EQUAL_CLOCKS) == pytest.approx(
            280.0
        )

    def test_latency_converts_message_part_only(self, coherence):
        # With the network 2x faster, 100 network cycles = 50 processor
        # cycles, so T_t = 2*50 + 80 = 180 processor cycles.
        assert coherence.transaction_latency(100.0, ALEWIFE_CLOCKS) == pytest.approx(
            180.0
        )

    def test_fixed_overhead_network_conversion(self, coherence):
        assert coherence.fixed_overhead_network(ALEWIFE_CLOCKS) == pytest.approx(
            160.0
        )

    def test_zero_message_latency_leaves_fixed_overhead(self, coherence):
        assert coherence.transaction_latency(0.0, EQUAL_CLOCKS) == pytest.approx(80.0)


class TestEq8:
    def test_issue_time_is_g_times_message_time(self, coherence):
        assert coherence.issue_time_from_message_time(10.0) == pytest.approx(32.0)

    def test_message_time_inverts_issue_time(self, coherence):
        assert coherence.message_time_from_issue_time(
            coherence.issue_time_from_message_time(7.0)
        ) == pytest.approx(7.0)

    def test_rate_relations_mirror_time_relations(self, coherence):
        # r_m = g * r_t and r_t = r_m / g.
        assert coherence.message_rate_from_transaction_rate(0.01) == pytest.approx(
            0.032
        )
        assert coherence.transaction_rate_from_message_rate(0.032) == pytest.approx(
            0.01
        )

    def test_rate_and_time_views_are_consistent(self, coherence):
        issue_time = 250.0
        rate = 1.0 / issue_time
        assert coherence.message_time_from_issue_time(issue_time) == pytest.approx(
            1.0 / coherence.message_rate_from_transaction_rate(rate)
        )


class TestVariants:
    def test_with_critical_messages(self, coherence):
        widened = coherence.with_critical_messages(2.3)
        assert widened.critical_messages == 2.3
        assert widened.messages_per_transaction == coherence.messages_per_transaction
        assert widened.fixed_overhead == coherence.fixed_overhead

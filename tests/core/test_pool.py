"""The persistent warm worker pool: dispatch, broadcast, and recovery.

Start-method coverage: the cheap contract tests run on a fork pool
(fork is the platform default everywhere these tests run); the
shared-memory and determinism-critical ones run on spawn pools too,
because spawn is the path real macOS/Windows users take and the one
where broadcast transport actually pickles.
"""

import os
import warnings

import numpy as np
import pytest

from repro import obs
from repro.core.pool import (
    FALLBACK_ERRORS,
    SHARED_MEMORY_MIN_BYTES,
    PoolFallbackWarning,
    WorkerPool,
    default_start_method,
    get_pool,
    note_fallback,
    shutdown_global_pool,
)
from repro.errors import ParameterError, PoolError, WorkerCrashError


# ----------------------------------------------------------------------
# Task functions (module-level so they pickle by reference).
# ----------------------------------------------------------------------


def _square(payload, item):
    return item * item


def _payload_sum(payload, item):
    base, array = payload
    return base + int(array[item])


def _boom_on_three(payload, item):
    if item == 3:
        raise ValueError("boom-3")
    return item


def _die_on_two(payload, item):
    if item == 2:
        os._exit(17)
    return item


def _worker_pid(payload, item):
    return os.getpid()


class _PickleCounter:
    """Counts (parent-side) pickles of itself via a class attribute."""

    pickles = 0

    def __getstate__(self):
        type(self).pickles += 1
        return {}

    def __setstate__(self, state):
        pass


def _ignore(payload, item):
    return item


class TestConstruction:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ParameterError):
            WorkerPool(0)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(PoolError):
            WorkerPool(1, start_method="teleport")

    def test_default_start_method_is_available(self):
        import multiprocessing

        assert default_start_method() in (
            multiprocessing.get_all_start_methods()
        )

    def test_workers_start_lazily(self):
        with WorkerPool(2) as pool:
            assert not pool.started
            pool.warm()
            assert pool.started


class TestDispatch:
    def test_map_preserves_item_order(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, range(20)) == [
                i * i for i in range(20)
            ]

    def test_map_with_explicit_chunk_size(self):
        with WorkerPool(2) as pool:
            assert pool.map(_square, range(7), chunk_size=1) == [
                i * i for i in range(7)
            ]

    def test_empty_items(self):
        with WorkerPool(1) as pool:
            assert pool.map(_square, []) == []

    def test_missing_broadcast_key_raises(self):
        with WorkerPool(1) as pool:
            with pytest.raises(PoolError, match="no broadcast"):
                pool.map(_payload_sum, [1], key="never-registered")

    def test_closed_pool_raises_a_fallback_error(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(FALLBACK_ERRORS):
            pool.map(_square, [1])

    def test_tasks_spread_across_workers(self):
        with WorkerPool(2) as pool:
            pool.warm()
            pids = set(pool.map(_worker_pid, range(16), chunk_size=1))
        assert os.getpid() not in pids


class TestBroadcast:
    def test_payload_reaches_tasks(self):
        array = np.arange(10, dtype=np.int64)
        with WorkerPool(2) as pool:
            pool.broadcast("k", (100, array))
            assert pool.map(_payload_sum, [0, 5, 9], key="k") == [
                100, 105, 109,
            ]

    def test_identical_payload_is_not_rebroadcast(self):
        array = np.arange(10, dtype=np.int64)
        payload = (100, array)
        with WorkerPool(1) as pool:
            first = pool.broadcast("k", payload)
            again = pool.broadcast("k", (100, array))  # same objects
            assert first == again

    def test_changed_payload_replaces_the_old_one(self):
        array = np.arange(10, dtype=np.int64)
        with WorkerPool(1) as pool:
            first = pool.broadcast("k", (100, array))
            second = pool.broadcast("k", (200, array))
            assert second != first
            assert pool.map(_payload_sum, [1], key="k") == [201]

    def test_fork_staged_broadcast_is_never_pickled(self):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("no fork on this platform")
        _PickleCounter.pickles = 0
        with WorkerPool(2, start_method="fork") as pool:
            pool.broadcast("k", (_PickleCounter(), np.zeros(4)))
            pool.map(_ignore, range(8), key="k")
            assert _PickleCounter.pickles == 0

    def test_spawn_broadcast_pickles_once_per_worker_not_per_task(self):
        _PickleCounter.pickles = 0
        with WorkerPool(2, start_method="spawn") as pool:
            pool.warm()
            pool.broadcast("k", (_PickleCounter(), np.zeros(4)))
            baseline = _PickleCounter.pickles
            assert baseline == pool.jobs
            pool.map(_ignore, range(12), key="k")
            assert _PickleCounter.pickles == baseline


class TestSharedMemory:
    def test_spawn_pool_ships_large_arrays_out_of_band(self):
        length = SHARED_MEMORY_MIN_BYTES  # int64 -> 8x the threshold
        array = np.arange(length, dtype=np.int64)
        with WorkerPool(1, start_method="spawn") as pool:
            assert pool.uses_shared_memory
            pool.broadcast("k", (7, array))
            assert pool._segments["k"], "large array should use shm"
            assert pool.map(
                _payload_sum, [0, length - 1], key="k"
            ) == [7, 7 + length - 1]

    def test_small_arrays_stay_in_the_pickle_stream(self):
        array = np.arange(8, dtype=np.int64)
        with WorkerPool(1, start_method="spawn") as pool:
            pool.broadcast("k", (7, array))
            assert "k" not in pool._segments
            assert pool.map(_payload_sum, [3], key="k") == [10]

    def test_fork_pool_never_exports_segments(self):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("no fork on this platform")
        array = np.arange(SHARED_MEMORY_MIN_BYTES, dtype=np.int64)
        with WorkerPool(1, start_method="fork") as pool:
            assert not pool.uses_shared_memory
            pool.broadcast("k", (7, array))
            assert not pool._segments


class TestFailureContainment:
    def test_poisoned_task_fails_only_itself(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="boom-3"):
                pool.map(_boom_on_three, range(6), chunk_size=1)
            # The pool survives the task failure.
            assert pool.map(_square, range(4)) == [0, 1, 4, 9]

    def test_worker_crash_fails_chunk_and_respawns(self):
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerCrashError):
                pool.map(_die_on_two, range(6), chunk_size=1)
            assert len(pool._workers) == pool.jobs
            assert pool.map(_square, range(4)) == [0, 1, 4, 9]

    def test_crashed_spawn_worker_recovers_its_broadcasts(self):
        array = np.arange(SHARED_MEMORY_MIN_BYTES, dtype=np.int64)
        with WorkerPool(1, start_method="spawn") as pool:
            pool.broadcast("k", (7, array))
            with pytest.raises(WorkerCrashError):
                pool.map(_die_on_two, [2])
            # The replacement worker received the broadcast replay.
            assert pool.map(_payload_sum, [5], key="k") == [12]

    def test_crash_error_is_a_fallback_error(self):
        assert issubclass(WorkerCrashError, FALLBACK_ERRORS)


class TestGlobalPool:
    def test_get_pool_reuses_and_grows(self):
        shutdown_global_pool()
        try:
            pool = get_pool(1)
            assert get_pool(1) is pool
            assert get_pool(3) is pool
            assert pool.jobs == 3
        finally:
            shutdown_global_pool()

    def test_shutdown_then_get_makes_a_fresh_pool(self):
        first = get_pool(1)
        shutdown_global_pool()
        assert first.closed
        second = get_pool(1)
        try:
            assert second is not first
            assert not second.closed
        finally:
            shutdown_global_pool()


class TestFallbackVisibility:
    def test_note_fallback_counts_and_warns(self):
        counter = obs.REGISTRY.counter(
            "pool.fallback",
            help="parallel runs degraded to the serial path",
        )
        before = counter.value
        with pytest.warns(PoolFallbackWarning, match="sim.replicate"):
            note_fallback("sim.replicate", OSError("no forking today"))
        assert counter.value == before + 1

"""Tests for the combined-model solver (paper Section 2.5)."""

import pytest

from repro.core.combined import open_loop, solve, solve_quadratic
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.errors import ParameterError, SaturationError


@pytest.fixture
def node():
    # A moderately latency-tolerant node: s = 3.2, intercept 100 cycles.
    return NodeModel(sensitivity=3.2, intercept=100.0, messages_per_transaction=3.2)


@pytest.fixture
def network():
    return TorusNetworkModel(dimensions=2, message_size=12.0)


@pytest.fixture
def base_network():
    return TorusNetworkModel(
        dimensions=2, message_size=12.0, clamp_local=False,
        node_channel_contention=False,
    )


class TestFixedPoint:
    def test_solution_lies_on_both_curves(self, node, network):
        point = solve(node, network, distance=8.0)
        node_side = node.message_latency_at_rate(point.message_rate)
        network_side = network.message_latency(point.message_rate, 8.0)
        assert node_side == pytest.approx(network_side, rel=1e-9)
        assert point.message_latency == pytest.approx(node_side, rel=1e-9)

    def test_utilization_below_saturation(self, node, network):
        point = solve(node, network, distance=8.0)
        assert 0.0 < point.utilization < 1.0

    def test_rejects_nonpositive_distance(self, node, network):
        with pytest.raises(ParameterError):
            solve(node, network, distance=0.0)

    def test_rate_decreases_with_distance(self, node, network):
        # The feedback: longer distances -> higher latency -> backoff.
        rates = [solve(node, network, d).message_rate for d in (2.0, 4.0, 8.0, 16.0)]
        assert all(b < a for a, b in zip(rates, rates[1:]))

    def test_latency_increases_with_distance(self, node, network):
        latencies = [
            solve(node, network, d).message_latency for d in (2.0, 4.0, 8.0, 16.0)
        ]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_higher_sensitivity_sustains_higher_rate(self, network):
        tolerant = NodeModel(sensitivity=6.4, intercept=100.0)
        intolerant = NodeModel(sensitivity=1.6, intercept=100.0)
        assert (
            solve(tolerant, network, 8.0).message_rate
            > solve(intolerant, network, 8.0).message_rate
        )

    def test_clamped_local_solution_is_analytic(self, node, network):
        # d < n: T_m = d + B + node-channel; with contention the bisection
        # runs, but the mesh term is exactly d + B.
        point = solve(node, network, distance=1.0)
        assert point.per_hop_latency == pytest.approx(1.0)
        assert point.message_latency == pytest.approx(
            1.0 + 12.0 + network.node_channel_delay(point.message_rate)
        )

    def test_clamped_without_node_channels_closed_form(self, node):
        network = TorusNetworkModel(
            dimensions=2, message_size=12.0, node_channel_contention=False
        )
        point = solve(node, network, distance=1.0)
        # r = s / (K + d + B) = 3.2 / 113.
        assert point.message_rate == pytest.approx(3.2 / 113.0)


class TestOperatingPointFields:
    def test_message_time_is_reciprocal_rate(self, node, network):
        point = solve(node, network, 8.0)
        assert point.message_time == pytest.approx(1.0 / point.message_rate)

    def test_transaction_rate_uses_g(self, node, network):
        point = solve(node, network, 8.0)
        assert point.transaction_rate == pytest.approx(point.message_rate / 3.2)

    def test_issue_time_uses_g(self, node, network):
        point = solve(node, network, 8.0)
        assert point.issue_time == pytest.approx(3.2 * point.message_time)

    def test_aggregate_performance_scales_with_processors(self, node, network):
        point = solve(node, network, 8.0)
        assert point.aggregate_performance(100.0) == pytest.approx(
            100.0 * point.transaction_rate
        )

    def test_distance_recorded(self, node, network):
        assert solve(node, network, 8.0).distance == 8.0


class TestQuadraticCrossCheck:
    def test_matches_bisection_on_base_model(self, node, base_network):
        for distance in (3.0, 6.0, 10.0, 25.0, 100.0):
            numeric = solve(node, base_network, distance)
            closed = solve_quadratic(node, base_network, distance)
            assert closed.message_rate == pytest.approx(
                numeric.message_rate, rel=1e-9
            )

    def test_refuses_extended_model(self, node, network):
        with pytest.raises(ParameterError):
            solve_quadratic(node, network, 8.0)

    def test_delegates_when_geometry_vanishes(self, node, base_network):
        # k_d <= 1 makes the quadratic degenerate; both paths must agree.
        closed = solve_quadratic(node, base_network, 2.0)
        numeric = solve(node, base_network, 2.0)
        assert closed.message_rate == pytest.approx(numeric.message_rate, rel=1e-9)

    def test_rejects_nonpositive_distance(self, node, base_network):
        with pytest.raises(ParameterError):
            solve_quadratic(node, base_network, -1.0)


class TestOpenLoopAblation:
    def test_open_loop_matches_network_curve(self, network):
        assert open_loop(network, 0.01, 8.0) == pytest.approx(
            network.message_latency(0.01, 8.0)
        )

    def test_open_loop_diverges_where_feedback_would_not(self, node, network):
        # The paper's key contrast with Agarwal: a fixed injection rate
        # saturates large networks, the closed loop never does.
        closed = solve(node, network, 8.0)
        fixed_rate = closed.message_rate
        # At 4x the distance the same rate exceeds saturation...
        with pytest.raises(SaturationError):
            open_loop(network, fixed_rate, 32.0)
        # ...while the closed-loop model still solves.
        assert solve(node, network, 32.0).utilization < 1.0

    def test_extreme_distance_still_solvable_closed_loop(self, node, network):
        point = solve(node, network, 2000.0)
        assert point.utilization < 1.0
        assert point.message_latency > 0

"""Tests for the global perf counters and the memoized solve cache."""

import numpy as np
import pytest

from repro import perf
from repro.core import (
    NodeModel,
    TorusNetworkModel,
    clear_solve_cache,
    solve,
    solve_batch,
    solve_cached,
)


@pytest.fixture
def models():
    return (
        NodeModel(sensitivity=3.26, intercept=90.0),
        TorusNetworkModel(dimensions=2, message_size=12.0),
    )


@pytest.fixture(autouse=True)
def clean_state():
    clear_solve_cache()
    perf.reset()
    yield
    clear_solve_cache()
    perf.reset()


class TestCounters:
    def test_solve_increments_solve_calls(self, models):
        node, network = models
        before = perf.snapshot()
        solve(node, network, 4.0)
        assert perf.delta(before)["solve_calls"] == 1

    def test_batch_counts_invocations_and_points(self, models):
        node, network = models
        before = perf.snapshot()
        solve_batch(node, network, np.array([2.0, 4.0, 8.0]))
        d = perf.delta(before)
        assert d["batch_solves"] == 1
        assert d["batch_points"] == 3

    def test_reset_zeroes_everything(self, models):
        node, network = models
        solve(node, network, 4.0)
        perf.reset()
        assert all(v == 0 for v in perf.snapshot().values())

    def test_delta_ignores_unrelated_activity_before_snapshot(self, models):
        node, network = models
        solve(node, network, 4.0)
        before = perf.snapshot()
        solve(node, network, 8.0)
        assert perf.delta(before)["solve_calls"] == 1


class TestSolveCache:
    def test_first_lookup_misses_then_hits(self, models):
        node, network = models
        before = perf.snapshot()
        first = solve_cached(node, network, 4.0)
        second = solve_cached(node, network, 4.0)
        d = perf.delta(before)
        assert d["cache_misses"] == 1
        assert d["cache_hits"] == 1
        assert first == second

    def test_cached_result_matches_scalar_solve(self, models):
        node, network = models
        cached = solve_cached(node, network, 6.0)
        direct = solve(node, network, 6.0)
        assert cached.message_rate == direct.message_rate
        assert cached.transaction_rate == direct.transaction_rate

    def test_distinct_parameters_are_distinct_entries(self, models):
        node, network = models
        before = perf.snapshot()
        solve_cached(node, network, 4.0)
        solve_cached(node, network, 5.0)
        slower = NodeModel(
            sensitivity=node.sensitivity, intercept=node.intercept * 2
        )
        solve_cached(slower, network, 4.0)
        d = perf.delta(before)
        assert d["cache_misses"] == 3
        assert d["cache_hits"] == 0

    def test_clear_cache_forces_re_solve(self, models):
        node, network = models
        solve_cached(node, network, 4.0)
        clear_solve_cache()
        before = perf.snapshot()
        solve_cached(node, network, 4.0)
        assert perf.delta(before)["cache_misses"] == 1

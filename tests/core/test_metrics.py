"""Tests for the performance metrics (paper Section 2.6)."""

import pytest

from repro.core.combined import solve
from repro.core.metrics import (
    aggregate_performance,
    expected_gain,
    expected_gain_for_radix,
    performance_ratio,
    useful_work_rate,
)
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.errors import ParameterError
from repro.topology.distance import random_traffic_distance


@pytest.fixture
def node():
    return NodeModel(sensitivity=3.2, intercept=100.0, messages_per_transaction=3.2)


@pytest.fixture
def network():
    return TorusNetworkModel(dimensions=2, message_size=12.0)


class TestBasicMetrics:
    def test_useful_work_rate_is_grain_over_issue_time(self, node, network):
        point = solve(node, network, 8.0)
        grain_network = 50.0
        assert useful_work_rate(point, grain_network) == pytest.approx(
            grain_network / point.issue_time
        )

    def test_useful_work_rate_rejects_nonpositive_grain(self, node, network):
        point = solve(node, network, 8.0)
        with pytest.raises(ParameterError):
            useful_work_rate(point, 0.0)

    def test_aggregate_performance(self, node, network):
        point = solve(node, network, 8.0)
        assert aggregate_performance(point, 64) == pytest.approx(
            64 * point.transaction_rate
        )

    def test_aggregate_rejects_nonpositive_processors(self, node, network):
        point = solve(node, network, 8.0)
        with pytest.raises(ParameterError):
            aggregate_performance(point, 0)

    def test_performance_ratio_is_rate_ratio(self, node, network):
        near = solve(node, network, 2.0)
        far = solve(node, network, 16.0)
        assert performance_ratio(near, far) == pytest.approx(
            near.transaction_rate / far.transaction_rate
        )
        assert performance_ratio(near, far) > 1.0


class TestExpectedGain:
    def test_gain_exceeds_one(self, node, network):
        result = expected_gain(node, network, processors=1024)
        assert result.gain > 1.0

    def test_random_distance_uses_eq17(self, node, network):
        result = expected_gain(node, network, processors=4096)
        # N = 4096, n = 2 => k = 64 => d = 2*64^3/(4*(4096-1)).
        assert result.random_distance == pytest.approx(
            2 * 64**3 / (4 * 4095), rel=1e-12
        )

    def test_gain_monotone_in_machine_size(self, node, network):
        gains = [
            expected_gain(node, network, n).gain for n in (100, 1000, 10000, 100000)
        ]
        assert all(b > a for a, b in zip(gains, gains[1:]))

    def test_gain_bounded_by_latency_reduction(self, node, network):
        # Section 4.1: gain is at most linear in the distance factor —
        # in particular it can never exceed the message-latency ratio.
        result = expected_gain(node, network, processors=10000)
        latency_ratio = (
            result.random.message_latency / result.ideal.message_latency
        )
        assert result.gain <= latency_ratio + 1e-9

    def test_distance_ratio_reported(self, node, network):
        result = expected_gain(node, network, processors=1024)
        assert result.distance_ratio == pytest.approx(
            result.random_distance / result.ideal_distance
        )

    def test_custom_ideal_distance(self, node, network):
        close = expected_gain(node, network, 4096, ideal_distance=1.0)
        farther = expected_gain(node, network, 4096, ideal_distance=2.0)
        assert farther.gain < close.gain

    def test_rejects_nonpositive_ideal_distance(self, node, network):
        with pytest.raises(ParameterError):
            expected_gain(node, network, 1024, ideal_distance=0.0)


class TestExpectedGainForRadix:
    def test_radix_and_size_parameterizations_agree(self, node, network):
        by_radix = expected_gain_for_radix(node, network, radix=32)
        by_size = expected_gain(node, network, processors=1024)
        assert by_radix.gain == pytest.approx(by_size.gain, rel=1e-9)
        assert by_radix.processors == pytest.approx(1024.0)

    def test_random_distance_matches_eq17(self, node, network):
        result = expected_gain_for_radix(node, network, radix=8)
        assert result.random_distance == pytest.approx(
            random_traffic_distance(8, 2)
        )

"""Tests for the Eq 18 issue-time decomposition (paper Section 4.2)."""

import pytest

from repro.core.application import ApplicationModel
from repro.core.breakdown import decompose
from repro.core.combined import solve
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.core.transaction import TransactionModel
from repro.units import ALEWIFE_CLOCKS


@pytest.fixture
def models():
    application = ApplicationModel(grain=8.0, contexts=2.0, switch_time=11.0)
    transaction = TransactionModel(
        critical_messages=2.0, messages_per_transaction=3.2, fixed_overhead=80.0
    )
    network = TorusNetworkModel(dimensions=2, message_size=12.0)
    node = NodeModel.from_components(application, transaction, ALEWIFE_CLOCKS)
    return application, transaction, network, node


class TestDecomposition:
    def test_components_sum_to_issue_time(self, models):
        application, transaction, network, node = models
        point = solve(node, network, distance=8.0)
        breakdown = decompose(
            point, application, transaction, network, ALEWIFE_CLOCKS
        )
        assert breakdown.total == pytest.approx(
            point.issue_time_processor(ALEWIFE_CLOCKS), rel=1e-9
        )

    def test_cpu_component_is_grain_over_contexts(self, models):
        application, transaction, network, node = models
        point = solve(node, network, 8.0)
        breakdown = decompose(
            point, application, transaction, network, ALEWIFE_CLOCKS
        )
        assert breakdown.cpu == pytest.approx(4.0)

    def test_fixed_transaction_component(self, models):
        application, transaction, network, node = models
        point = solve(node, network, 8.0)
        breakdown = decompose(
            point, application, transaction, network, ALEWIFE_CLOCKS
        )
        assert breakdown.fixed_transaction == pytest.approx(40.0)

    def test_fixed_message_component_is_cb_converted(self, models):
        application, transaction, network, node = models
        point = solve(node, network, 8.0)
        breakdown = decompose(
            point, application, transaction, network, ALEWIFE_CLOCKS
        )
        # c*B/p network cycles = 2*12/2 = 12 -> 6 processor cycles.
        assert breakdown.fixed_message == pytest.approx(6.0)

    def test_only_variable_component_grows_with_distance(self, models):
        application, transaction, network, node = models
        near = decompose(
            solve(node, network, 2.0), application, transaction, network,
            ALEWIFE_CLOCKS,
        )
        far = decompose(
            solve(node, network, 12.0), application, transaction, network,
            ALEWIFE_CLOCKS,
        )
        assert far.variable_message > near.variable_message
        assert far.fixed_message == pytest.approx(near.fixed_message)
        assert far.fixed_transaction == pytest.approx(near.fixed_transaction)
        assert far.cpu == pytest.approx(near.cpu)

    def test_fixed_total_and_share(self, models):
        application, transaction, network, node = models
        breakdown = decompose(
            solve(node, network, 8.0), application, transaction, network,
            ALEWIFE_CLOCKS,
        )
        assert breakdown.fixed_total == pytest.approx(
            breakdown.fixed_message + breakdown.fixed_transaction + breakdown.cpu
        )
        assert breakdown.fixed_transaction_share == pytest.approx(
            breakdown.fixed_transaction / breakdown.fixed_total
        )

    def test_as_dict_uses_figure8_labels(self, models):
        application, transaction, network, node = models
        breakdown = decompose(
            solve(node, network, 8.0), application, transaction, network,
            ALEWIFE_CLOCKS,
        )
        labels = set(breakdown.as_dict())
        assert "variable message overhead" in labels
        assert "fixed transaction overhead" in labels
        assert "CPU cycles" in labels

    def test_node_channel_component_zero_when_disabled(self, models):
        application, transaction, _, node = models
        base_network = TorusNetworkModel(
            dimensions=2, message_size=12.0, node_channel_contention=False
        )
        breakdown = decompose(
            solve(node, base_network, 8.0), application, transaction,
            base_network, ALEWIFE_CLOCKS,
        )
        assert breakdown.node_channel == 0.0

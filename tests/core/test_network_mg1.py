"""Tests for the M/G/1 node-channel extension (message-size variance)."""

import pytest

from repro.core.network import TorusNetworkModel
from repro.errors import ParameterError


class TestSecondMoment:
    def test_default_is_deterministic_sizes(self):
        network = TorusNetworkModel(dimensions=2, message_size=12.0)
        # M/D/1: W = r * B^2 / (2(1-rho)) per channel, two channels.
        rate = 0.02
        rho = rate * 12.0
        expected = 2.0 * rate * 144.0 / (2.0 * (1.0 - rho))
        assert network.node_channel_delay(rate) == pytest.approx(expected)

    def test_variance_increases_waiting(self):
        deterministic = TorusNetworkModel(dimensions=2, message_size=12.0)
        bimodal = TorusNetworkModel(
            dimensions=2, message_size=12.0,
            message_size_second_moment=192.0,  # 12 control@8 + 4 data@24
        )
        rate = 0.02
        assert bimodal.node_channel_delay(rate) == pytest.approx(
            deterministic.node_channel_delay(rate) * 192.0 / 144.0
        )

    def test_protocol_mix_second_moment(self):
        # The validated protocol's steady-state mix: per 16 messages,
        # 12 control (8 flits) + 4 data (24 flits).
        sizes = [8] * 12 + [24] * 4
        mean = sum(sizes) / len(sizes)
        second = sum(s * s for s in sizes) / len(sizes)
        assert mean == 12.0
        assert second == 192.0

    def test_rejects_second_moment_below_mean_squared(self):
        with pytest.raises(ParameterError):
            TorusNetworkModel(
                dimensions=2, message_size=12.0,
                message_size_second_moment=100.0,
            )

    def test_exact_square_allowed(self):
        network = TorusNetworkModel(
            dimensions=2, message_size=12.0,
            message_size_second_moment=144.0,
        )
        baseline = TorusNetworkModel(dimensions=2, message_size=12.0)
        assert network.node_channel_delay(0.02) == pytest.approx(
            baseline.node_channel_delay(0.02)
        )

    def test_mesh_term_unaffected_by_variance(self):
        # Only the node-channel term is M/G/1; Eq 14 stays Agarwal's.
        a = TorusNetworkModel(dimensions=2, message_size=12.0)
        b = TorusNetworkModel(
            dimensions=2, message_size=12.0,
            message_size_second_moment=300.0,
        )
        assert a.per_hop_latency(0.01, 8.0) == pytest.approx(
            b.per_hop_latency(0.01, 8.0)
        )

    def test_summary_reports_second_moment(self):
        from repro.mapping.strategies import identity_mapping
        from repro.sim.config import SimulationConfig
        from repro.sim.machine import Machine
        from repro.topology.graphs import torus_neighbor_graph
        from repro.workload.synthetic import build_programs

        config = SimulationConfig(
            radix=4, dimensions=2,
            warmup_network_cycles=500, measure_network_cycles=2500,
        )
        graph = torus_neighbor_graph(4, 2)
        programs = build_programs(graph, 1, config.compute_cycles, 0.5)
        summary = Machine(config, identity_mapping(16), programs).run()
        assert summary.mean_message_flits_squared >= (
            summary.mean_message_flits**2
        )
        # Bimodal mix: noticeably above the deterministic floor.
        assert summary.mean_message_flits_squared > (
            1.2 * summary.mean_message_flits**2
        )

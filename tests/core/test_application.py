"""Tests for the application model (paper Section 2.1, Eqs 1-6)."""

import pytest

from repro.core.application import ApplicationModel
from repro.errors import ParameterError


@pytest.fixture
def single_context():
    return ApplicationModel(grain=50.0, contexts=1.0, switch_time=0.0)


@pytest.fixture
def sparcle_like():
    return ApplicationModel(grain=50.0, contexts=4.0, switch_time=11.0)


class TestConstruction:
    @pytest.mark.parametrize("bad_grain", [0.0, -1.0])
    def test_rejects_nonpositive_grain(self, bad_grain):
        with pytest.raises(ParameterError):
            ApplicationModel(grain=bad_grain)

    @pytest.mark.parametrize("bad_contexts", [0.0, 0.5, -1.0])
    def test_rejects_contexts_below_one(self, bad_contexts):
        with pytest.raises(ParameterError):
            ApplicationModel(grain=10.0, contexts=bad_contexts)

    def test_rejects_negative_switch_time(self):
        with pytest.raises(ParameterError):
            ApplicationModel(grain=10.0, switch_time=-1.0)

    def test_fractional_contexts_allowed(self):
        # Prefetching-style mechanisms sustain fractional averages.
        model = ApplicationModel(grain=10.0, contexts=1.5)
        assert model.contexts == 1.5


class TestTransactionCurve:
    def test_single_context_eq2(self, single_context):
        # Eq 2: T_t = t_t - T_r  <=>  t_t = T_t + T_r.
        assert single_context.issue_time(100.0) == pytest.approx(150.0)

    def test_eq6_inverts_eq5(self, sparcle_like):
        latency = 321.0
        issue = sparcle_like.issue_time(latency)
        assert sparcle_like.transaction_latency(issue) == pytest.approx(latency)

    def test_slope_is_contexts(self, sparcle_like):
        # Eq 6: dT_t/dt_t = p.
        t1 = sparcle_like.issue_time(100.0)
        t2 = sparcle_like.issue_time(200.0)
        assert (200.0 - 100.0) / (t2 - t1) == pytest.approx(4.0)

    def test_doubling_contexts_halves_latency_sensitivity(self):
        # The paper's A-vs-B example: doubling the slope halves the issue-
        # time increase for the same latency increase.
        a = ApplicationModel(grain=50.0, contexts=1.0)
        b = a.with_contexts(2.0)
        delta_a = a.issue_time(200.0) - a.issue_time(100.0)
        delta_b = b.issue_time(200.0) - b.issue_time(100.0)
        assert delta_b == pytest.approx(delta_a / 2.0)

    def test_zero_latency_issue_time_is_grain_over_contexts(self, sparcle_like):
        assert sparcle_like.issue_time(0.0) == pytest.approx(50.0 / 4.0)


class TestMasking:
    def test_single_context_cannot_mask_any_latency(self, single_context):
        assert single_context.masking_threshold == 0.0
        assert single_context.masks_latency(0.0)
        assert not single_context.masks_latency(1.0)

    def test_masking_threshold_eq3(self, sparcle_like):
        # Eq 3 threshold: p*T_s + (p-1)*T_r = 4*11 + 3*50 = 194.
        assert sparcle_like.masking_threshold == pytest.approx(194.0)

    def test_masks_below_threshold(self, sparcle_like):
        assert sparcle_like.masks_latency(194.0)
        assert not sparcle_like.masks_latency(195.0)

    def test_min_issue_time_eq4(self, sparcle_like):
        # Eq 4: t_t >= T_r + T_s.
        assert sparcle_like.min_issue_time == pytest.approx(61.0)

    def test_floor_applies_only_at_small_latency(self, sparcle_like):
        # Below threshold the floor binds; far above it, Eq 5 governs.
        assert sparcle_like.issue_time_with_floor(0.0) == pytest.approx(61.0)
        big = 1000.0
        assert sparcle_like.issue_time_with_floor(big) == pytest.approx(
            sparcle_like.issue_time(big)
        )

    def test_floor_continuity_near_crossover(self, sparcle_like):
        # The with-floor curve is the max of two lines: it must be
        # monotone nondecreasing through the crossover region.
        values = [sparcle_like.issue_time_with_floor(t) for t in range(0, 400, 10)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestVariants:
    def test_with_contexts_preserves_other_fields(self, sparcle_like):
        two = sparcle_like.with_contexts(2.0)
        assert two.contexts == 2.0
        assert two.grain == sparcle_like.grain
        assert two.switch_time == sparcle_like.switch_time

    def test_with_grain_scaled_figure6_style(self, sparcle_like):
        scaled = sparcle_like.with_grain_scaled(10.0)
        assert scaled.grain == pytest.approx(500.0)

    def test_with_grain_scaled_rejects_nonpositive(self, sparcle_like):
        with pytest.raises(ParameterError):
            sparcle_like.with_grain_scaled(0.0)

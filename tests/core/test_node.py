"""Tests for the node model (paper Section 2.3, Eq 9)."""

import pytest

from repro.core.application import ApplicationModel
from repro.core.node import NodeModel
from repro.core.transaction import TransactionModel
from repro.errors import ParameterError
from repro.units import ALEWIFE_CLOCKS, EQUAL_CLOCKS


@pytest.fixture
def app():
    return ApplicationModel(grain=40.0, contexts=2.0, switch_time=11.0)


@pytest.fixture
def txn():
    return TransactionModel(
        critical_messages=2.0, messages_per_transaction=3.2, fixed_overhead=60.0
    )


class TestConstruction:
    def test_rejects_nonpositive_sensitivity(self):
        with pytest.raises(ParameterError):
            NodeModel(sensitivity=0.0, intercept=1.0)

    def test_rejects_negative_intercept(self):
        with pytest.raises(ParameterError):
            NodeModel(sensitivity=1.0, intercept=-1.0)

    def test_rejects_nonpositive_messages_per_transaction(self):
        with pytest.raises(ParameterError):
            NodeModel(sensitivity=1.0, intercept=0.0, messages_per_transaction=0.0)


class TestComposition:
    def test_sensitivity_is_pg_over_c(self, app, txn):
        node = NodeModel.from_components(app, txn, EQUAL_CLOCKS)
        assert node.sensitivity == pytest.approx(2.0 * 3.2 / 2.0)

    def test_sensitivity_independent_of_clocks(self, app, txn):
        # s is dimensionless (slope of a time-vs-time line).
        equal = NodeModel.from_components(app, txn, EQUAL_CLOCKS)
        alewife = NodeModel.from_components(app, txn, ALEWIFE_CLOCKS)
        assert equal.sensitivity == pytest.approx(alewife.sensitivity)

    def test_intercept_eq9(self, app, txn):
        # (T_r + T_f)/c in network cycles: (40+60)*2 / 2 = 100 with the
        # Alewife 2x network clock.
        node = NodeModel.from_components(app, txn, ALEWIFE_CLOCKS)
        assert node.intercept == pytest.approx(100.0)

    def test_sensitivity_proportional_to_contexts(self, app, txn):
        one = NodeModel.from_components(app.with_contexts(1.0), txn, EQUAL_CLOCKS)
        four = NodeModel.from_components(app.with_contexts(4.0), txn, EQUAL_CLOCKS)
        assert four.sensitivity == pytest.approx(4.0 * one.sensitivity)


class TestMessageCurve:
    @pytest.fixture
    def node(self, app, txn):
        return NodeModel.from_components(app, txn, ALEWIFE_CLOCKS)

    def test_curve_is_linear_with_slope_s(self, node):
        t1, t2 = 50.0, 90.0
        slope = (node.message_latency(t2) - node.message_latency(t1)) / (t2 - t1)
        assert slope == pytest.approx(node.sensitivity)

    def test_message_time_inverts_message_latency(self, node):
        latency = node.message_latency(75.0)
        assert node.message_time(latency) == pytest.approx(75.0)

    def test_rate_view_matches_time_view(self, node):
        time = 40.0
        assert node.message_latency_at_rate(1.0 / time) == pytest.approx(
            node.message_latency(time)
        )

    def test_rate_view_rejects_nonpositive_rate(self, node):
        with pytest.raises(ParameterError):
            node.message_latency_at_rate(0.0)

    def test_zero_latency_message_time(self, node):
        # At T_m = 0 the node is compute-bound: t_m = intercept / s.
        tm0 = node.zero_latency_message_time
        assert node.message_latency(tm0) == pytest.approx(0.0, abs=1e-9)

    def test_backoff_direction(self, node):
        # Higher observed latency -> longer inter-message time (the
        # feedback that keeps networks out of saturation).
        assert node.message_time(200.0) > node.message_time(100.0)


class TestTransactionRecovery:
    @pytest.fixture
    def node(self, app, txn):
        return NodeModel.from_components(app, txn, ALEWIFE_CLOCKS)

    def test_issue_time_is_g_times_message_time(self, node, txn):
        assert node.issue_time(10.0) == pytest.approx(
            txn.messages_per_transaction * 10.0
        )

    def test_transaction_rate_is_message_rate_over_g(self, node, txn):
        assert node.transaction_rate(0.032) == pytest.approx(
            0.032 / txn.messages_per_transaction
        )

"""Tests for the bandwidth-bound asymptotics (Section 4.1 corollaries)."""

import pytest

from repro.core.limits import (
    bandwidth_bound_issue_time,
    bandwidth_gain_ceiling,
)
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.core.combined import solve
from repro.errors import ParameterError
from repro.experiments.alewife import alewife_system


class TestBandwidthBoundIssueTime:
    def test_formula(self):
        node = NodeModel(sensitivity=3.2, intercept=50.0,
                         messages_per_transaction=3.2)
        network = TorusNetworkModel(dimensions=2, message_size=12.0)
        # g * B * k_d / 2 = 3.2 * 12 * 4 / 2.
        assert bandwidth_bound_issue_time(node, network, 8.0) == pytest.approx(
            76.8
        )

    def test_solved_issue_time_respects_the_floor(self):
        # At huge distances the combined model's t_t approaches (and
        # never beats) the bandwidth bound.
        node = NodeModel(sensitivity=6.4, intercept=20.0,
                         messages_per_transaction=3.2)
        network = TorusNetworkModel(
            dimensions=2, message_size=12.0, node_channel_contention=False
        )
        distance = 2000.0
        floor = bandwidth_bound_issue_time(node, network, distance)
        point = solve(node, network, distance)
        assert point.issue_time >= floor
        assert point.issue_time < 1.5 * floor  # deep in the bound regime

    def test_context_independence_of_the_floor(self):
        # The floor depends on g, B, k_d — not on sensitivity: this is
        # why the Figure 7 curves converge.
        network = TorusNetworkModel(dimensions=2, message_size=12.0)
        one = NodeModel(sensitivity=1.6, intercept=50.0,
                        messages_per_transaction=3.2)
        four = NodeModel(sensitivity=6.4, intercept=50.0,
                         messages_per_transaction=3.2)
        assert bandwidth_bound_issue_time(
            one, network, 100.0
        ) == bandwidth_bound_issue_time(four, network, 100.0)


class TestGainCeiling:
    def test_ceiling_is_distance_ratio(self):
        network = TorusNetworkModel(dimensions=2, message_size=12.0)
        # At 10^6 nodes, random distance ~500 -> ceiling ~500.
        assert bandwidth_gain_ceiling(network, 1e6) == pytest.approx(
            500.0, rel=1e-3
        )

    def test_actual_gains_sit_below_the_ceiling(self):
        for contexts in (1, 2, 4):
            system = alewife_system(contexts=contexts)
            for processors in (1000.0, 1e6):
                gain = system.expected_gain(processors).gain
                ceiling = bandwidth_gain_ceiling(system.network, processors)
                assert gain < ceiling

    def test_farther_ideal_distance_lowers_ceiling(self):
        network = TorusNetworkModel(dimensions=2, message_size=12.0)
        assert bandwidth_gain_ceiling(
            network, 1e6, ideal_distance=2.0
        ) == pytest.approx(bandwidth_gain_ceiling(network, 1e6) / 2.0)

    def test_rejects_nonpositive_ideal_distance(self):
        network = TorusNetworkModel(dimensions=2, message_size=12.0)
        with pytest.raises(ParameterError):
            bandwidth_gain_ceiling(network, 1e6, ideal_distance=0.0)

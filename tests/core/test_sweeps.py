"""Tests for the sweep utilities."""

import numpy as np
import pytest

from repro.core.application import ApplicationModel
from repro.core.network import TorusNetworkModel
from repro.core.sweeps import (
    gain_curve,
    logspace_sizes,
    sweep_distances,
    sweep_network_slowdowns,
)
from repro.core.system import SystemModel
from repro.core.transaction import TransactionModel
from repro.units import ALEWIFE_CLOCKS


@pytest.fixture
def system():
    return SystemModel(
        application=ApplicationModel(grain=8.0, contexts=1.0, switch_time=11.0),
        transaction=TransactionModel(
            critical_messages=2.0, messages_per_transaction=3.2, fixed_overhead=40.0
        ),
        network=TorusNetworkModel(
            dimensions=2, message_size=12.0, node_channel_contention=False
        ),
        clocks=ALEWIFE_CLOCKS,
    )


class TestSweepDistances:
    def test_one_sample_per_distance(self, system):
        samples = sweep_distances(system, [1.0, 2.0, 4.0])
        assert [s.distance for s in samples] == [1.0, 2.0, 4.0]

    def test_samples_are_solved_points(self, system):
        (sample,) = sweep_distances(system, [4.0])
        direct = system.operating_point(4.0)
        assert sample.point.message_rate == pytest.approx(direct.message_rate)


class TestGainCurve:
    def test_curve_arrays_aligned(self, system):
        curve = gain_curve(system, [100, 1000, 10000], label="p=1")
        assert curve.label == "p=1"
        assert list(curve.sizes) == [100, 1000, 10000]
        assert len(curve.gains) == 3

    def test_gains_increase_with_size(self, system):
        curve = gain_curve(system, [100, 1000, 10000, 100000])
        assert np.all(np.diff(curve.gains) > 0)

    def test_gain_at_exact_size(self, system):
        curve = gain_curve(system, [100, 1000])
        assert curve.gain_at(1000) == pytest.approx(curve.gains[1])

    def test_gain_at_unswept_size_raises(self, system):
        curve = gain_curve(system, [100, 1000])
        with pytest.raises(KeyError):
            curve.gain_at(555)


class TestSlowdownSweep:
    def test_one_sample_per_factor(self, system):
        samples = sweep_network_slowdowns(system, [1, 2, 4], sizes=[1000])
        assert [s.slowdown for s in samples] == [1.0, 2.0, 4.0]

    def test_network_speedups_recorded(self, system):
        samples = sweep_network_slowdowns(system, [1, 2], sizes=[1000])
        assert samples[0].network_speedup == pytest.approx(2.0)
        assert samples[1].network_speedup == pytest.approx(1.0)

    def test_gains_rise_with_slowdown(self, system):
        # Table 1's trend.
        samples = sweep_network_slowdowns(system, [1, 2, 4, 8], sizes=[1000])
        gains = [s.gains_by_size[1000.0] for s in samples]
        assert all(b > a for a, b in zip(gains, gains[1:]))


class TestContextsSweep:
    def test_one_sample_per_level(self, system):
        from repro.core.sweeps import sweep_contexts

        samples = sweep_contexts(system, [1, 2, 4], distance=8.0)
        assert [s.contexts for s in samples] == [1.0, 2.0, 4.0]

    def test_throughput_rises_with_contexts(self, system):
        from repro.core.sweeps import sweep_contexts

        samples = sweep_contexts(system, [1, 2, 4], distance=8.0)
        throughputs = [s.throughput for s in samples]
        assert all(b > a for a, b in zip(throughputs, throughputs[1:]))

    def test_diminishing_returns(self, system):
        from repro.core.sweeps import sweep_contexts

        samples = sweep_contexts(system, [1, 2, 4], distance=8.0)
        first_step = samples[1].throughput / samples[0].throughput
        second_step = samples[2].throughput / samples[1].throughput
        assert second_step < first_step

    def test_limiting_per_hop_scales_with_sensitivity(self, system):
        from repro.core.sweeps import sweep_contexts

        samples = sweep_contexts(system, [1, 4], distance=8.0)
        assert samples[1].limiting_per_hop == pytest.approx(
            4.0 * samples[0].limiting_per_hop
        )


class TestLogspaceSizes:
    def test_default_span(self):
        sizes = logspace_sizes()
        assert sizes[0] == pytest.approx(10.0)
        assert sizes[-1] == pytest.approx(1e6)

    def test_count(self):
        assert len(logspace_sizes(count=7)) == 7

    def test_monotone(self):
        assert np.all(np.diff(logspace_sizes()) > 0)


class TestGainCurveLookup:
    @pytest.fixture
    def curve(self, system):
        return gain_curve(system, [100.0, 1000.0, 10000.0], label="g=8")

    def test_exact_size_hit(self, curve):
        assert curve.gain_at(1000.0) == curve.results[1].gain

    def test_tolerance_hit(self, curve):
        # Within the default 1e-6 relative tolerance of a swept size.
        nudged = 1000.0 * (1 + 5e-7)
        assert curve.gain_at(nudged) == curve.results[1].gain

    def test_miss_raises_key_error(self, curve):
        with pytest.raises(KeyError):
            curve.gain_at(777.0)

    def test_index_is_not_part_of_equality(self, system):
        a = gain_curve(system, [100.0, 1000.0], label="x")
        b = gain_curve(system, [100.0, 1000.0], label="x")
        a.gain_at(100.0)  # builds a's lazy index, leaves b's empty
        assert a == b


class TestSlowdownSampleImmutability:
    @pytest.fixture
    def sample(self, system):
        return sweep_network_slowdowns(
            system, [1.0, 2.0], sizes=[1000.0, 1e6]
        )[0]

    def test_gains_by_size_is_a_mapping(self, sample):
        assert sample.gains_by_size[1000.0] > 0
        assert set(sample.gains_by_size) == {1000.0, 1e6}
        assert len(sample.gains_by_size) == 2

    def test_gains_by_size_rejects_mutation(self, sample):
        with pytest.raises(TypeError):
            sample.gains_by_size[1000.0] = 2.0

    def test_sample_is_hashable(self, sample):
        assert isinstance(hash(sample), int)
        assert sample in {sample}

    def test_equal_samples_hash_equal(self, system):
        a = sweep_network_slowdowns(system, [2.0], sizes=[1000.0])[0]
        b = sweep_network_slowdowns(system, [2.0], sizes=[1000.0])[0]
        assert a == b
        assert hash(a) == hash(b)

    def test_accepts_plain_dict_input(self):
        from repro.core.sweeps import SlowdownSample

        sample = SlowdownSample(
            slowdown=2.0,
            network_speedup=0.5,
            gains_by_size={1000.0: 3.0},
        )
        assert sample.gains_by_size[1000.0] == 3.0
        with pytest.raises(TypeError):
            sample.gains_by_size[1000.0] = 9.0

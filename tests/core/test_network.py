"""Tests for the Agarwal torus network model (paper Section 2.4)."""

import pytest

from repro.core.network import TorusNetworkModel
from repro.errors import ParameterError, SaturationError


@pytest.fixture
def alewife_net():
    return TorusNetworkModel(dimensions=2, message_size=12.0)


@pytest.fixture
def base_net():
    # Agarwal's model without the paper's extensions.
    return TorusNetworkModel(
        dimensions=2, message_size=12.0, clamp_local=False,
        node_channel_contention=False,
    )


class TestConstruction:
    def test_rejects_zero_dimensions(self):
        with pytest.raises(ParameterError):
            TorusNetworkModel(dimensions=0)

    @pytest.mark.parametrize("bad", [0.0, -12.0])
    def test_rejects_nonpositive_message_size(self, bad):
        with pytest.raises(ParameterError):
            TorusNetworkModel(message_size=bad)


class TestGeometry:
    def test_per_dimension_distance_eq13(self, alewife_net):
        assert alewife_net.per_dimension_distance(8.0) == pytest.approx(4.0)

    def test_per_dimension_rejects_nonpositive_distance(self, alewife_net):
        with pytest.raises(ParameterError):
            alewife_net.per_dimension_distance(0.0)

    def test_contention_geometry_vanishes_at_unit_kd(self, alewife_net):
        # (k_d - 1)/k_d^2 is zero at k_d = 1 (d = n).
        assert alewife_net.contention_geometry(2.0) == 0.0

    def test_contention_geometry_positive_beyond_unit_kd(self, alewife_net):
        assert alewife_net.contention_geometry(8.0) > 0.0

    def test_contention_geometry_formula(self, alewife_net):
        # k_d = 4: (3/16) * (3/2) = 0.28125.
        assert alewife_net.contention_geometry(8.0) == pytest.approx(0.28125)


class TestUtilization:
    def test_eq10(self, alewife_net):
        # rho = r_m * B * k_d / 2 = 0.01 * 12 * 4 / 2 = 0.24.
        assert alewife_net.channel_utilization(0.01, 8.0) == pytest.approx(0.24)

    def test_zero_rate_means_zero_utilization(self, alewife_net):
        assert alewife_net.channel_utilization(0.0, 8.0) == 0.0

    def test_rejects_negative_rate(self, alewife_net):
        with pytest.raises(ParameterError):
            alewife_net.channel_utilization(-0.1, 8.0)

    def test_saturation_rate_reaches_unit_utilization(self, alewife_net):
        rate = alewife_net.saturation_rate(8.0)
        assert alewife_net.channel_utilization(rate, 8.0) == pytest.approx(1.0)

    def test_max_rate_includes_node_channel_when_enabled(self, alewife_net):
        # At short distances the node channel (r_m * B < 1) binds first.
        assert alewife_net.max_rate(1.0) == pytest.approx(1.0 / 12.0)

    def test_max_rate_is_mesh_limit_without_node_channels(self, base_net):
        assert base_net.max_rate(1.0) == pytest.approx(
            base_net.saturation_rate(1.0)
        )


class TestPerHopLatency:
    def test_unloaded_hop_costs_one_cycle(self, alewife_net):
        assert alewife_net.per_hop_latency(0.0, 8.0) == pytest.approx(1.0)

    def test_eq14_at_known_point(self, alewife_net):
        # rho = 0.24, geometry = 0.28125:
        # T_h = 1 + (0.24*12/0.76) * 0.28125.
        expected = 1.0 + (0.24 * 12.0 / 0.76) * 0.28125
        assert alewife_net.per_hop_latency(0.01, 8.0) == pytest.approx(expected)

    def test_clamp_for_local_traffic(self, alewife_net):
        # d < n => k_d < 1 => T_h = 1 regardless of load.
        assert alewife_net.per_hop_latency(0.05, 1.0) == pytest.approx(1.0)

    def test_monotone_in_load(self, alewife_net):
        latencies = [
            alewife_net.per_hop_latency(r, 8.0) for r in (0.001, 0.01, 0.02, 0.03)
        ]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_diverges_at_saturation(self, alewife_net):
        rate = alewife_net.saturation_rate(8.0)
        with pytest.raises(SaturationError):
            alewife_net.per_hop_latency(rate, 8.0)


class TestNodeChannelDelay:
    def test_disabled_extension_contributes_nothing(self, base_net):
        assert base_net.node_channel_delay(0.05) == 0.0

    def test_mdl_queueing_formula(self, alewife_net):
        # rho_c = 0.025*12 = 0.3; per channel 0.3*12/(2*0.7); two channels.
        expected = 2.0 * (0.3 * 12.0 / (2.0 * 0.7))
        assert alewife_net.node_channel_delay(0.025) == pytest.approx(expected)

    def test_paper_magnitude_two_to_five_cycles(self, alewife_net):
        # Section 2.4: at the 64-node experiments' rates this factor added
        # two to five network cycles.  Typical measured inter-message
        # times were around 45-80 network cycles (Figure 3's axis range).
        low = alewife_net.node_channel_delay(1.0 / 80.0)
        high = alewife_net.node_channel_delay(1.0 / 45.0)
        assert 1.5 < low < high < 5.5

    def test_saturates_at_channel_capacity(self, alewife_net):
        with pytest.raises(SaturationError):
            alewife_net.node_channel_delay(1.0 / 12.0)


class TestMessageLatency:
    def test_zero_load_latency_is_d_plus_b(self, alewife_net):
        assert alewife_net.zero_load_latency(8.0) == pytest.approx(20.0)

    def test_eq11_structure(self, base_net):
        # T_m = d * T_h + B.
        rate, distance = 0.01, 8.0
        t_h = base_net.per_hop_latency(rate, distance)
        assert base_net.message_latency(rate, distance) == pytest.approx(
            distance * t_h + 12.0
        )

    def test_extensions_add_node_channel_delay(self, alewife_net, base_net):
        rate, distance = 0.01, 8.0
        assert alewife_net.message_latency(rate, distance) == pytest.approx(
            base_net.message_latency(rate, distance)
            + alewife_net.node_channel_delay(rate)
        )

    def test_latency_increases_with_distance(self, alewife_net):
        low = alewife_net.message_latency(0.01, 4.0)
        high = alewife_net.message_latency(0.01, 8.0)
        assert high > low


class TestVariants:
    def test_without_extensions(self, alewife_net):
        base = alewife_net.without_extensions()
        assert not base.clamp_local
        assert not base.node_channel_contention
        assert base.message_size == alewife_net.message_size

    def test_with_dimensions(self, alewife_net):
        three_d = alewife_net.with_dimensions(3)
        assert three_d.dimensions == 3
        assert three_d.message_size == alewife_net.message_size

    def test_describe_reports_consistent_quantities(self, alewife_net):
        info = alewife_net.describe(0.01, 8.0)
        assert info["k_d"] == pytest.approx(4.0)
        assert info["rho"] == pytest.approx(0.24)
        assert info["T_m"] == pytest.approx(
            alewife_net.message_latency(0.01, 8.0)
        )

    def test_bisection_bandwidth_per_node(self, alewife_net):
        # Radix-8 2-D torus: 4*8 channels / 64 nodes / 0.5 = 1 flit/cycle.
        assert alewife_net.bisection_bandwidth_per_node(8) == pytest.approx(1.0)

"""Tests for the asymptotic results (paper Section 4.1, Eq 16)."""

import pytest

from repro.core.limits import (
    limiting_per_hop_latency,
    limiting_per_hop_latency_for,
    per_hop_curve,
    size_to_reach_fraction,
)
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.errors import ParameterError


@pytest.fixture
def node():
    # The paper's two-context configuration: s = 3.26.
    return NodeModel(sensitivity=3.26, intercept=50.0, messages_per_transaction=3.2)


@pytest.fixture
def network():
    # The Section 4 sweeps use the base model (no node-channel term).
    return TorusNetworkModel(
        dimensions=2, message_size=12.0, node_channel_contention=False
    )


class TestEq16:
    def test_papers_quoted_value(self):
        # s = 3.26, B = 12, n = 2 -> "approximately 9.8 network cycles".
        assert limiting_per_hop_latency(3.26, 12.0, 2) == pytest.approx(9.78)

    def test_limit_proportional_to_sensitivity(self):
        # Section 4.1: multiple outstanding transactions raise the limit
        # proportionally.
        one = limiting_per_hop_latency(1.63, 12.0, 2)
        two = limiting_per_hop_latency(3.26, 12.0, 2)
        assert two == pytest.approx(2.0 * one)

    def test_limit_floor_is_one_cycle(self):
        # If s*B/(2n) < 1 the network is never stressed; T_h -> 1.
        assert limiting_per_hop_latency(0.1, 2.0, 4) == 1.0

    def test_higher_dimension_lowers_limit(self):
        assert limiting_per_hop_latency(3.26, 12.0, 3) < limiting_per_hop_latency(
            3.26, 12.0, 2
        )

    @pytest.mark.parametrize(
        "bad_args",
        [(0.0, 12.0, 2), (3.26, 0.0, 2), (3.26, 12.0, 0)],
    )
    def test_rejects_invalid_parameters(self, bad_args):
        with pytest.raises(ParameterError):
            limiting_per_hop_latency(*bad_args)

    def test_for_variant_reads_models(self, node, network):
        assert limiting_per_hop_latency_for(node, network) == pytest.approx(9.78)


class TestApproachToLimit:
    def test_per_hop_latency_monotone_in_machine_size(self, node, network):
        samples = per_hop_curve(node, network, [100, 1000, 10000, 100000])
        latencies = [s.per_hop_latency for s in samples]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_per_hop_latency_stays_within_limit_band(self, node, network):
        # Eq 16 is approached from below over this whole range for the
        # paper's parameters (fixed overheads dominate until enormous
        # machines); allow a sliver for the asymptotic overshoot regime.
        limit = limiting_per_hop_latency_for(node, network)
        samples = per_hop_curve(node, network, [100, 1000, 1e4, 1e5, 1e6, 1e7])
        assert all(s.per_hop_latency <= limit * 1.02 for s in samples)

    def test_limit_approached_closely_at_huge_sizes(self, node, network):
        limit = limiting_per_hop_latency_for(node, network)
        (sample,) = per_hop_curve(node, network, [1e8])
        assert sample.per_hop_latency > 0.98 * limit

    def test_samples_record_distance_and_size(self, node, network):
        (sample,) = per_hop_curve(node, network, [4096])
        assert sample.processors == 4096
        # d for N = 4096 is just under k/2 * n / 2 = 32; Eq 17 exact:
        assert sample.distance == pytest.approx(2 * 64**3 / (4 * 4095))


class TestSizeToReachFraction:
    def test_paper_claim_eighty_percent_few_thousand(self, network):
        # Figure 6: the small-grain two-context application reaches over
        # 80% of its limiting value with "a few thousand processors".
        # Calibrated two-context node: intercept (T_r + T_f)*2/c =
        # (8 + 80)*2/1.963 network cycles.
        node = NodeModel(
            sensitivity=3.26, intercept=(8.0 + 80.0) * 2 / 1.963,
            messages_per_transaction=3.2,
        )
        size = size_to_reach_fraction(node, network, 0.8)
        assert 1000 < size < 10000

    def test_larger_grain_reaches_fraction_later(self, network):
        small = NodeModel(sensitivity=3.26, intercept=50.0)
        large = NodeModel(sensitivity=3.26, intercept=500.0)
        assert size_to_reach_fraction(
            large, network, 0.8
        ) > size_to_reach_fraction(small, network, 0.8)

    def test_rejects_fraction_outside_unit_interval(self, node, network):
        with pytest.raises(ParameterError):
            size_to_reach_fraction(node, network, 1.0)
        with pytest.raises(ParameterError):
            size_to_reach_fraction(node, network, 0.0)

    def test_unreachable_fraction_raises(self, network):
        node = NodeModel(sensitivity=3.26, intercept=50.0)
        with pytest.raises(ParameterError):
            size_to_reach_fraction(node, network, 0.999, max_processors=1e4)

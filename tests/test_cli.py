"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, build_sim_parser, main, sim_main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure-99"])

    def test_gain_requires_processors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gain"])


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure-3" in out
        assert "table-1" in out
        assert "ucl-vs-nucl" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table-1"]) == 0
        out = capsys.readouterr().out
        assert "2x faster" in out
        assert "41.2" in out  # the paper column is printed alongside

    def test_run_quick_analytic_experiment(self, capsys):
        assert main(["run", "figure-7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Expected gain" in out

    def test_gain_command(self, capsys):
        assert main(
            ["gain", "--processors", "1000", "--contexts", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "expected locality gain" in out

    def test_gain_with_slowdown(self, capsys):
        assert main(
            ["gain", "--processors", "1000", "--slowdown", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "slowdown = 8" in out

    def test_symbols_command(self, capsys):
        assert main(["symbols"]) == 0
        out = capsys.readouterr().out
        assert "latency sensitivity" in out
        assert "T_h" in out

    def test_report_command(self, tmp_path, capsys):
        target = tmp_path / "out.md"
        # Restrict to a cheap analytic experiment via direct API; the CLI
        # writes the full registry, so here we only smoke-test the flag
        # plumbing with the quickest acceptable configuration.
        from repro.analysis.report import write_report

        write_report(str(target), ["table-1"], quick=True)
        assert target.exists()


class TestRunFlags:
    def test_run_without_experiment_or_all_errors(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_accepts_jobs_flag(self):
        args = build_parser().parse_args(["run", "--all", "--jobs", "4"])
        assert args.run_all is True
        assert args.jobs == 4

    def test_run_verbose_prints_perf_counters(self, capsys):
        assert main(["run", "figure-6", "--quick", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "[perf] figure-6:" in out
        assert "solve_calls" in out

    def test_run_without_verbose_omits_perf(self, capsys):
        assert main(["run", "figure-6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[perf]" not in out


class TestTelemetryFlag:
    def test_run_all_rejects_telemetry(self):
        with pytest.raises(SystemExit):
            main(["run", "--all", "--telemetry"])

    def test_run_telemetry_on_analytic_experiment_fails_cleanly(self, capsys):
        # figure-6 is analytic: no fabric to instrument.  The gate turns
        # this into a clean error instead of a silently ignored flag.
        assert main(["run", "figure-6", "--quick", "--telemetry"]) == 1
        err = capsys.readouterr().err
        assert "does not support --telemetry" in err
        assert "scaling-sim" in err  # the supported set is named


class TestSimCli:
    def test_probe_smoke(self, capsys):
        assert sim_main(
            [
                "probe", "--workload", "tree_saturation", "--radix", "4",
                "--cycles", "200", "--epoch", "32",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "tree_saturation probe" in out
        assert "rho model" in out  # the contention comparison table
        assert "tree saturation onset" in out
        assert "link utilization" in out  # the heatmap header

    def test_probe_writes_artifact_bundle(self, tmp_path, capsys):
        from repro import obs

        enabled_before = obs.is_enabled()
        try:
            assert sim_main(
                [
                    "probe", "--workload", "uniform", "--radix", "4",
                    "--cycles", "150", "--epoch", "32",
                    "--output", str(tmp_path),
                ]
            ) == 0
        finally:
            obs.reset()
            if not enabled_before:
                obs.disable()
        for name in (
            "telemetry.jsonl", "saturation.json", "heatmap.txt",
            "trace.json", "manifest.json",
        ):
            assert (tmp_path / name).exists(), name
        report = json.loads((tmp_path / "saturation.json").read_text())
        assert report["workload"] == "uniform"
        assert report["delivered"] > 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["parameters"]["telemetry"]["epoch_cycles"] == 32
        trace = json.loads((tmp_path / "trace.json").read_text())
        counters = [
            e for e in trace["traceEvents"] if e.get("ph") == "C"
        ]
        assert counters and counters[0]["name"] == "fabric.telemetry"

    def test_probe_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_sim_parser().parse_args(["probe", "--workload", "bogus"])

    def test_replicate_telemetry_smoke(self, tmp_path, capsys):
        target = tmp_path / "replicate.json"
        assert sim_main(
            [
                "replicate", "--radix", "4", "--seeds", "2",
                "--warmup", "300", "--measure", "1200",
                "--telemetry", "--telemetry-epoch", "128",
                "--json", str(target),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry (merged[2x" in out
        assert "link rho mean" in out
        assert "worm latency mean" in out
        payload = json.loads(target.read_text())
        telemetry = payload["telemetry"]
        assert telemetry["delivered"] > 0
        assert telemetry["epoch_cycles"] == 128
        assert len(telemetry["busy"]) == len(telemetry["depth"])

    def test_replicate_without_telemetry_omits_the_block(
        self, tmp_path, capsys
    ):
        target = tmp_path / "replicate.json"
        assert sim_main(
            [
                "replicate", "--radix", "4", "--seeds", "1",
                "--warmup", "200", "--measure", "600",
                "--json", str(target),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out
        assert "telemetry" not in json.loads(target.read_text())

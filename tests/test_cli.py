"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure-99"])

    def test_gain_requires_processors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gain"])


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure-3" in out
        assert "table-1" in out
        assert "ucl-vs-nucl" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table-1"]) == 0
        out = capsys.readouterr().out
        assert "2x faster" in out
        assert "41.2" in out  # the paper column is printed alongside

    def test_run_quick_analytic_experiment(self, capsys):
        assert main(["run", "figure-7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Expected gain" in out

    def test_gain_command(self, capsys):
        assert main(
            ["gain", "--processors", "1000", "--contexts", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "expected locality gain" in out

    def test_gain_with_slowdown(self, capsys):
        assert main(
            ["gain", "--processors", "1000", "--slowdown", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "slowdown = 8" in out

    def test_symbols_command(self, capsys):
        assert main(["symbols"]) == 0
        out = capsys.readouterr().out
        assert "latency sensitivity" in out
        assert "T_h" in out

    def test_report_command(self, tmp_path, capsys):
        target = tmp_path / "out.md"
        # Restrict to a cheap analytic experiment via direct API; the CLI
        # writes the full registry, so here we only smoke-test the flag
        # plumbing with the quickest acceptable configuration.
        from repro.analysis.report import write_report

        write_report(str(target), ["table-1"], quick=True)
        assert target.exists()


class TestRunFlags:
    def test_run_without_experiment_or_all_errors(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_accepts_jobs_flag(self):
        args = build_parser().parse_args(["run", "--all", "--jobs", "4"])
        assert args.run_all is True
        assert args.jobs == 4

    def test_run_verbose_prints_perf_counters(self, capsys):
        assert main(["run", "figure-6", "--quick", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "[perf] figure-6:" in out
        assert "solve_calls" in out

    def test_run_without_verbose_omits_perf(self, capsys):
        assert main(["run", "figure-6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[perf]" not in out

"""Tests for run-provenance manifests and parameter hashing."""

import json

from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    git_revision,
    parameter_hash,
)


class TestParameterHash:
    def test_stable_across_key_order(self):
        assert parameter_hash({"a": 1, "b": 2}) == parameter_hash(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert parameter_hash({"a": 1}) != parameter_hash({"a": 2})

    def test_is_hex_sha256(self):
        digest = parameter_hash({"quick": True})
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_handles_non_json_values(self):
        # default=str: any stringifiable value hashes deterministically.
        assert parameter_hash({"p": (1, 2)}) == parameter_hash({"p": (1, 2)})


class TestBuildManifest:
    def test_captures_provenance_fields(self):
        manifest = build_manifest(
            ["figure-3"],
            parameters={"quick": True},
            rng_seeds={"anneal": 7},
            wall_seconds=1.5,
            cpu_seconds=1.2,
        )
        assert manifest.experiments == ["figure-3"]
        assert manifest.parameters["quick"] is True
        assert manifest.parameters["experiments"] == ["figure-3"]
        assert manifest.parameter_hash == parameter_hash(manifest.parameters)
        assert manifest.git_sha == git_revision()
        assert manifest.git_sha != ""
        assert manifest.python_version.count(".") == 2
        assert manifest.rng_seeds["anneal"] == 7
        assert "python_hash_seed" in manifest.rng_seeds
        assert "solve_calls" in manifest.counters
        assert manifest.wall_seconds == 1.5
        assert manifest.cpu_seconds == 1.2
        assert manifest.schema_version == 1

    def test_git_sha_in_this_checkout(self):
        # The repo is a git checkout, so the SHA must resolve.
        sha = git_revision()
        assert sha != "unknown"
        assert len(sha) == 40


class TestRoundTrip:
    def test_write_load_equality(self, tmp_path):
        manifest = build_manifest(
            ["table-1", "figure-7"],
            parameters={"quick": False, "jobs": 2},
            wall_seconds=3.25,
            cpu_seconds=3.0,
            extra={"note": "round-trip"},
        )
        path = manifest.write(str(tmp_path / "manifest.json"))
        loaded = RunManifest.load(path)
        assert loaded == manifest

    def test_written_json_is_sorted_and_plain(self, tmp_path):
        manifest = build_manifest(["figure-3"], parameters={"quick": True})
        path = manifest.write(str(tmp_path / "manifest.json"))
        with open(path) as handle:
            data = json.load(handle)
        assert list(data) == sorted(data)
        assert data["schema_version"] == 1

    def test_from_dict_ignores_unknown_fields(self):
        manifest = build_manifest(["figure-3"])
        data = dict(manifest.as_dict(), future_field="ignored")
        assert RunManifest.from_dict(data) == manifest

"""Tests for the span layer: nesting, disabled-mode no-ops, export."""

import json
import os

from repro import obs
from repro.obs.spans import NULL_SPAN, NullSpan, TraceBuffer


class TestDisabledMode:
    def test_disabled_span_is_the_shared_null_singleton(self):
        assert obs.span("anything", key="value") is NULL_SPAN

    def test_disabled_spans_record_nothing(self):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert len(obs.trace()) == 0

    def test_null_span_is_reentrant(self):
        span = NullSpan()
        with span:
            with span:
                pass  # same instance can nest freely

    def test_null_span_propagates_exceptions(self):
        try:
            with NULL_SPAN:
                raise ValueError("boom")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("NULL_SPAN must not swallow exceptions")

    def test_solver_diagnostics_none_when_disabled(self):
        assert obs.solver_diagnostics() is None


class TestNesting:
    def test_depth_and_parent_links(self):
        obs.enable(fresh=True)
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
        records = {r["name"]: r for r in obs.trace().spans}
        assert records["outer"]["depth"] == 0
        assert records["outer"]["parent"] == -1
        assert records["middle"]["depth"] == 1
        assert records["middle"]["parent"] == records["outer"]["index"]
        assert records["inner"]["depth"] == 2
        assert records["inner"]["parent"] == records["middle"]["index"]

    def test_siblings_share_a_parent(self):
        obs.enable(fresh=True)
        with obs.span("outer"):
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        records = {r["name"]: r for r in obs.trace().spans}
        assert records["first"]["parent"] == records["outer"]["index"]
        assert records["second"]["parent"] == records["outer"]["index"]
        assert records["first"]["depth"] == records["second"]["depth"] == 1

    def test_spans_carry_attrs_and_durations(self):
        obs.enable(fresh=True)
        with obs.span("solve", distance=4.06, lanes=12):
            pass
        (record,) = obs.trace().spans
        assert record["args"] == {"distance": 4.06, "lanes": 12}
        assert record["duration"] >= 0.0

    def test_span_records_even_when_body_raises(self):
        obs.enable(fresh=True)
        try:
            with obs.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.trace().names() == ["failing"]


class TestMarks:
    def test_mark_and_since(self):
        obs.enable(fresh=True)
        with obs.span("before"):
            pass
        mark = obs.trace_mark()
        with obs.span("after"):
            pass
        tail = obs.spans_since(mark)
        assert [r["name"] for r in tail] == ["after"]

    def test_ingest_merges_foreign_records(self):
        obs.enable(fresh=True)
        with obs.span("local"):
            pass
        foreign = [
            {
                "index": 0, "name": "remote", "start": 0.0, "duration": 0.5,
                "depth": 0, "parent": -1, "pid": 99999, "tid": 1, "args": {},
            }
        ]
        assert obs.ingest_spans(foreign) == 1
        names = set(obs.trace().names())
        assert names == {"local", "remote"}
        pids = {r["pid"] for r in obs.trace().spans}
        assert 99999 in pids

    def test_reset_drops_spans_but_keeps_enabled(self):
        obs.enable(fresh=True)
        with obs.span("gone"):
            pass
        obs.reset()
        assert len(obs.trace()) == 0
        assert obs.is_enabled()


class TestExport:
    def test_chrome_trace_is_loadable_json(self, tmp_path):
        obs.enable(fresh=True)
        with obs.span("outer", kind="test"):
            with obs.span("inner"):
                pass
        path = obs.write_chrome_trace(str(tmp_path / "trace.json"))
        with open(path) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["kind"] == "test"
        assert outer["cat"] == "outer"

    def test_chrome_events_sorted_by_start(self):
        buffer = TraceBuffer()
        with buffer.span("a", {}):
            with buffer.span("b", {}):
                pass
        # Completion order is b, a; export restores start order a, b.
        assert buffer.names() == ["b", "a"]
        events = buffer.chrome_trace_events()
        assert [e["name"] for e in events] == ["a", "b"]

    def test_jsonl_one_record_per_line(self, tmp_path):
        obs.enable(fresh=True)
        for name in ("one", "two", "three"):
            with obs.span(name):
                pass
        path = obs.write_spans_jsonl(str(tmp_path / "trace.jsonl"))
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert [r["name"] for r in parsed] == ["one", "two", "three"]
        assert all("duration" in r and "pid" in r for r in parsed)


class TestCounters:
    def test_counter_no_op_when_disabled(self):
        obs.trace_counter("fabric.telemetry", 10.0, {"rho": 0.5})
        assert obs.trace().counters == []

    def test_counter_events_export_as_ph_c(self, tmp_path):
        obs.enable(fresh=True)
        obs.trace_counter("fabric.telemetry", 64.0, {"rho": 0.25, "depth": 3})
        obs.trace_counter("fabric.telemetry", 128.0, {"rho": 0.5, "depth": 7})
        with obs.span("work"):
            pass
        path = obs.write_chrome_trace(str(tmp_path / "trace.json"))
        with open(path) as handle:
            events = json.load(handle)["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2
        assert [c["ts"] for c in counters] == [64.0, 128.0]
        assert counters[0]["name"] == "fabric.telemetry"
        assert counters[0]["cat"] == "fabric"
        assert counters[0]["args"] == {"rho": 0.25, "depth": 3}
        # Span events still ride alongside the counter series.
        assert any(e["ph"] == "X" and e["name"] == "work" for e in events)

    def test_reset_drops_counters(self):
        obs.enable(fresh=True)
        obs.trace_counter("c", 1.0, {"v": 1})
        obs.reset()
        assert obs.trace().counters == []


class TestWorkerPayloads:
    @staticmethod
    def _span_record(pid, name="worker.task"):
        return {
            "index": 0, "name": name, "start": 0.0, "duration": 0.1,
            "depth": 0, "parent": -1, "pid": pid, "tid": 1, "args": {},
        }

    def test_merges_foreign_spans_and_histograms(self):
        obs.enable(fresh=True)
        obs.REGISTRY.histogram("sim.latency", buckets=(4, 8)).observe(2)
        payload = {
            "pid": 424242,
            "spans": [self._span_record(424242)],
            "histograms": {
                "sim.latency": {
                    "type": "histogram",
                    "buckets": [4, 8],
                    "counts": [0, 2, 1],
                    "count": 3,
                    "sum": 30.0,
                }
            },
        }
        merged = obs.ingest_worker_payloads([payload, None])
        assert merged == 1
        assert "worker.task" in obs.trace().names()
        histogram = obs.REGISTRY.get("sim.latency")
        assert histogram.counts == [1, 2, 1]
        assert histogram.count == 4

    def test_own_pid_payloads_are_skipped(self):
        # A fork that shipped inherited state back must not double-count.
        obs.enable(fresh=True)
        payload = {
            "pid": os.getpid(),
            "spans": [self._span_record(os.getpid())],
            "histograms": {
                "sim.latency.own_pid": {
                    "type": "histogram",
                    "buckets": [4, 8],
                    "counts": [1, 0, 0],
                    "count": 1,
                    "sum": 1.0,
                }
            },
        }
        assert obs.ingest_worker_payloads([payload]) == 0
        assert obs.trace().names() == []
        assert obs.REGISTRY.get("sim.latency.own_pid") is None

    def test_payloads_without_histograms_merge_spans_only(self):
        obs.enable(fresh=True)
        names_before = obs.REGISTRY.names()
        payload = {"pid": 424243, "spans": [self._span_record(424243)]}
        assert obs.ingest_worker_payloads([payload]) == 1
        assert obs.REGISTRY.names() == names_before

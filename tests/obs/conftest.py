"""Shared fixtures: observability state is process-global, so every
test in this package runs against a clean, disabled state and restores
it afterwards (other suites assume observability is off by default)."""

import pytest

from repro import obs, perf


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset()
    perf.reset()
    yield
    obs.disable()
    obs.reset()
    perf.reset()

"""Runner/CLI observability integration: failure accounting, alias
resolution, parallel trace merging, and --trace / diagnose artifacts."""

import json
from collections import Counter

import pytest

from repro import obs, perf
from repro.cli import main
from repro.core.combined import clear_solve_cache, solve
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.errors import ParameterError
from repro.experiments import runner as runner_module
from repro.experiments.result import ExperimentResult, render_perf_line
from repro.experiments.runner import (
    resolve_experiment_id,
    run_all,
    run_experiment,
)


class TestAliases:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("fig3", "figure-3"),
            ("Figure_3", "figure-3"),
            ("figure-3", "figure-3"),
            ("table1", "table-1"),
            ("TABLE-1", "table-1"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_experiment_id(alias) == canonical

    def test_unknown_ids_pass_through(self):
        assert resolve_experiment_id("figure-99") == "figure-99"

    def test_run_experiment_accepts_alias(self):
        result = run_experiment("fig7", quick=True)
        assert result.experiment == "figure-7"

    def test_cli_accepts_alias(self, capsys):
        assert main(["run", "fig7", "--quick"]) == 0
        assert "figure-7" in capsys.readouterr().out

    def test_cli_still_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["run", "figure-99"])


def _install_failing_experiment(monkeypatch):
    def failing_runner(quick):
        node = NodeModel(
            sensitivity=3.2, intercept=100.0, messages_per_transaction=3.2
        )
        network = TorusNetworkModel(dimensions=2, message_size=12.0)
        solve(node, network, distance=4.0)  # counted work before the crash
        raise RuntimeError("mid-experiment crash")

    registry = dict(runner_module.REGISTRY)
    registry["failing"] = failing_runner
    monkeypatch.setattr(runner_module, "REGISTRY", registry)


class TestFailureAccounting:
    def test_exception_carries_partial_perf(self, monkeypatch):
        _install_failing_experiment(monkeypatch)
        clear_solve_cache()
        with pytest.raises(RuntimeError) as excinfo:
            run_experiment("failing")
        partial = excinfo.value.partial_perf
        assert partial["failed"] is True
        assert partial["solve_calls"] >= 1
        assert partial["wall_seconds"] >= 0.0

    def test_render_marks_partial_counts(self):
        line = render_perf_line(
            "failing",
            {"failed": True, "solve_calls": 3, "wall_seconds": 0.01},
        )
        assert "FAILED (partial counts)" in line
        assert "solve_calls 3" in line

    def test_cli_verbose_reports_partial_counts(self, monkeypatch, capsys):
        # The parser's choices and the runner both read the (patched)
        # registry at call time, so the injected experiment is reachable
        # end-to-end through the real CLI.
        _install_failing_experiment(monkeypatch)
        clear_solve_cache()
        assert main(["run", "failing", "--quick", "--verbose"]) == 1
        captured = capsys.readouterr()
        assert "experiment failing failed" in captured.err
        assert "FAILED (partial counts)" in captured.out

    def test_cli_without_verbose_omits_partial_counts(
        self, monkeypatch, capsys
    ):
        _install_failing_experiment(monkeypatch)
        clear_solve_cache()
        assert main(["run", "failing", "--quick"]) == 1
        captured = capsys.readouterr()
        assert "experiment failing failed" in captured.err
        assert "FAILED (partial counts)" not in captured.out


class TestRunAllSubset:
    def test_subset_preserves_caller_order(self):
        results = run_all(quick=True, experiments=["figure-7", "table-1"])
        assert [r.experiment for r in results] == ["figure-7", "table-1"]

    def test_unknown_subset_rejected(self):
        with pytest.raises(ParameterError):
            run_all(quick=True, experiments=["figure-99"])


def _span_multiset():
    return Counter(span["name"] for span in obs.trace().spans)


class TestParallelTraceMerge:
    def test_jobs2_trace_matches_serial(self):
        experiments = ["table-1", "figure-7"]

        obs.enable(fresh=True)
        perf.reset()
        clear_solve_cache()
        serial_results = run_all(quick=True, experiments=experiments)
        serial_spans = _span_multiset()
        serial_perf = perf.snapshot()

        obs.reset()
        perf.reset()
        clear_solve_cache()
        parallel_results = run_all(
            quick=True, jobs=2, experiments=experiments
        )
        parallel_spans = _span_multiset()
        parallel_perf = perf.snapshot()

        # One merged trace whose per-experiment span set equals the
        # serial run's, and identical merged solver counters.
        assert parallel_spans == serial_spans
        assert parallel_spans["experiment"] == len(experiments)
        assert parallel_perf == serial_perf
        assert [r.render() for r in parallel_results] == [
            r.render() for r in serial_results
        ]

    def test_jobs2_writes_one_merged_artifact_set(self, tmp_path):
        obs.enable(fresh=True)
        perf.reset()
        clear_solve_cache()
        run_all(quick=True, jobs=2, experiments=["table-1", "figure-7"])
        paths = obs.write_outputs(
            str(tmp_path), experiments=["table-1", "figure-7"]
        )
        with open(paths["trace"]) as handle:
            events = json.load(handle)["traceEvents"]
        experiment_events = [e for e in events if e["name"] == "experiment"]
        assert len(experiment_events) == 2
        with open(paths["manifest"]) as handle:
            manifest = json.load(handle)
        assert manifest["experiments"] == ["table-1", "figure-7"]
        assert manifest["counters"]["solve_calls"] >= 1


class TestWorkerResults:
    def test_worker_spans_carry_worker_pid(self):
        import os

        obs.enable(fresh=True)
        clear_solve_cache()
        results = run_all(quick=True, jobs=2, experiments=["figure-7"])
        payload = results[0].obs
        assert payload, "worker must ship spans back on result.obs"
        # Pool path: the payload pid is the worker's, not the parent's.
        # (On platforms without a usable pool, run_all legitimately
        # falls back to serial and the pids match — accept both, but
        # the spans must be present either way.)
        assert payload["spans"]
        if payload["pid"] != os.getpid():
            merged_pids = {s["pid"] for s in obs.trace().spans}
            assert payload["pid"] in merged_pids

"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(2)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestHistogramBuckets:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(5)  # == bound: belongs to the <=5 bucket
        assert histogram.counts == [0, 1, 0, 0]

    def test_value_between_bounds_lands_in_upper_bucket(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(2)
        assert histogram.counts == [0, 1, 0, 0]

    def test_value_below_first_bound(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(0.5)
        assert histogram.counts == [1, 0, 0, 0]

    def test_overflow_slot(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(11)
        histogram.observe(1e9)
        assert histogram.counts == [0, 0, 0, 2]

    def test_count_and_sum(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        for value in (0.5, 5, 11):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(16.5)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ParameterError):
            Histogram("h", buckets=())

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ParameterError):
            Histogram("h", buckets=(1, 5, 5))

    def test_render_shows_every_bucket_and_overflow(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(1)
        histogram.observe(3)
        assert histogram.render() == "[<=1] 1 [<=2] 0 [>2] 1"

    def test_reset_keeps_bounds(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(1.5)
        histogram.reset()
        assert histogram.buckets == (1.0, 2.0)
        assert histogram.counts == [0, 0, 0]
        assert histogram.count == 0 and histogram.sum == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ParameterError):
            registry.gauge("x")
        with pytest.raises(ParameterError):
            registry.histogram("x", buckets=(1,))

    def test_snapshot_is_json_plain(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1, 2)).observe(1)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 2}
        assert snapshot["g"] == {"type": "gauge", "value": 1.5}
        assert snapshot["h"]["counts"] == [1, 0, 0]
        assert snapshot["h"]["buckets"] == [1.0, 2.0]

    def test_merge_counters_adds(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(1)
        registry.merge_counters({"a": 4, "b": 2})
        assert registry.counter("a").value == 5
        assert registry.counter("b").value == 2

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.reset()
        assert registry.names() == ["c"]
        assert registry.counter("c").value == 0

"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(2)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestHistogramBuckets:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(5)  # == bound: belongs to the <=5 bucket
        assert histogram.counts == [0, 1, 0, 0]

    def test_value_between_bounds_lands_in_upper_bucket(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(2)
        assert histogram.counts == [0, 1, 0, 0]

    def test_value_below_first_bound(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(0.5)
        assert histogram.counts == [1, 0, 0, 0]

    def test_overflow_slot(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(11)
        histogram.observe(1e9)
        assert histogram.counts == [0, 0, 0, 2]

    def test_count_and_sum(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        for value in (0.5, 5, 11):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(16.5)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ParameterError):
            Histogram("h", buckets=())

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ParameterError):
            Histogram("h", buckets=(1, 5, 5))

    def test_render_shows_every_bucket_and_overflow(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(1)
        histogram.observe(3)
        assert histogram.render() == "[<=1] 1 [<=2] 0 [>2] 1"

    def test_reset_keeps_bounds(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(1.5)
        histogram.reset()
        assert histogram.buckets == (1.0, 2.0)
        assert histogram.counts == [0, 0, 0]
        assert histogram.count == 0 and histogram.sum == 0.0

    def test_negative_values_land_in_first_bucket(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(-3)
        assert histogram.counts == [1, 0, 0, 0]
        assert histogram.sum == pytest.approx(-3.0)

    def test_value_just_above_bound_lands_in_next_bucket(self):
        # The `le` edge is exact: 5 belongs to <=5, 5 + epsilon does not.
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(5)
        histogram.observe(5.0000001)
        assert histogram.counts == [0, 1, 1, 0]

    def test_integer_and_float_bounds_compare_equal(self):
        # Bounds are normalized to float at construction, so observing
        # the integer form of a bound still hits the exact-edge bucket.
        histogram = Histogram("h", buckets=(4, 8.0, 16))
        histogram.observe(8)
        histogram.observe(4.0)
        assert histogram.counts == [1, 1, 0, 0]

    def test_last_bound_edge_vs_overflow(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        histogram.observe(10)      # == last bound: still in-range
        histogram.observe(10.001)  # past it: overflow slot
        assert histogram.counts == [0, 0, 1, 1]


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ParameterError):
            registry.gauge("x")
        with pytest.raises(ParameterError):
            registry.histogram("x", buckets=(1,))

    def test_snapshot_is_json_plain(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1, 2)).observe(1)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 2}
        assert snapshot["g"] == {"type": "gauge", "value": 1.5}
        assert snapshot["h"]["counts"] == [1, 0, 0]
        assert snapshot["h"]["buckets"] == [1.0, 2.0]

    def test_merge_counters_adds(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(1)
        registry.merge_counters({"a": 4, "b": 2})
        assert registry.counter("a").value == 5
        assert registry.counter("b").value == 2

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.reset()
        assert registry.names() == ["c"]
        assert registry.counter("c").value == 0


class TestHistogramMerge:
    """Cross-process histogram transport: snapshot + merge."""

    def test_snapshot_histograms_excludes_other_metric_types(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        registry.gauge("g").set(2.0)
        registry.histogram("h", buckets=(1, 2)).observe(1)
        payload = registry.snapshot_histograms()
        assert set(payload) == {"h"}
        assert payload["h"]["type"] == "histogram"

    def test_merge_adds_bucket_for_bucket(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1, 5, 10)).observe(2)
        worker.histogram("h").observe(7)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1, 5, 10)).observe(0.5)
        parent.merge_histograms(worker.snapshot_histograms())
        merged = parent.get("h")
        assert merged.counts == [1, 1, 1, 0]
        assert merged.count == 3
        assert merged.sum == pytest.approx(9.5)

    def test_merge_registers_unknown_names_with_payload_bounds(self):
        worker = MetricsRegistry()
        worker.histogram("new", buckets=(3, 6)).observe(4)
        parent = MetricsRegistry()
        parent.merge_histograms(worker.snapshot_histograms())
        merged = parent.get("new")
        assert merged is not None
        assert merged.buckets == (3.0, 6.0)
        assert merged.counts == [0, 1, 0]

    def test_merge_preserves_edge_placement(self):
        # An exact-bound observation made in a worker must land in the
        # same bucket after the merge as it would have locally.
        local = MetricsRegistry()
        local.histogram("h", buckets=(4, 8)).observe(8)
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(4, 8)).observe(8)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(4, 8))
        parent.merge_histograms(worker.snapshot_histograms())
        assert parent.get("h").counts == local.get("h").counts

    def test_merge_rejects_mismatched_bounds(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1, 2))
        with pytest.raises(ParameterError, match="bounds mismatch"):
            parent.merge_histograms(
                {
                    "h": {
                        "type": "histogram",
                        "buckets": [1, 3],
                        "counts": [0, 0, 0],
                        "count": 0,
                        "sum": 0.0,
                    }
                }
            )

    def test_merge_rejects_wrong_counts_length(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1, 2))
        with pytest.raises(ParameterError, match="counts"):
            parent.merge_histograms(
                {
                    "h": {
                        "type": "histogram",
                        "buckets": [1, 2],
                        "counts": [0, 0],  # missing the overflow slot
                        "count": 0,
                        "sum": 0.0,
                    }
                }
            )

    def test_merge_is_order_independent(self):
        payloads = []
        for values in ((1, 9), (3,), (12, 0.5)):
            registry = MetricsRegistry()
            histogram = registry.histogram("h", buckets=(2, 4, 8))
            for value in values:
                histogram.observe(value)
            payloads.append(registry.snapshot_histograms())
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for payload in payloads:
            forward.merge_histograms(payload)
        for payload in reversed(payloads):
            backward.merge_histograms(payload)
        assert forward.get("h").as_dict() == backward.get("h").as_dict()

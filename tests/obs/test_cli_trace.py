"""CLI-level tests for ``--trace`` artifacts and ``diagnose``."""

import json

from repro.cli import main
from repro.obs.manifest import RunManifest, git_revision, parameter_hash


class TestTraceFlag:
    def test_run_with_trace_writes_three_artifacts(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        assert main(["run", "table-1", "--trace", out]) == 0
        stdout = capsys.readouterr().out
        assert "trace written to" in stdout
        assert "manifest written to" in stdout

        with open(tmp_path / "out" / "trace.json") as handle:
            document = json.load(handle)
        names = {event["name"] for event in document["traceEvents"]}
        assert "experiment" in names
        assert any(name.startswith("solver.") for name in names)

        lines = (tmp_path / "out" / "trace.jsonl").read_text().splitlines()
        assert lines and all(json.loads(line)["name"] for line in lines)

        manifest = RunManifest.load(str(tmp_path / "out" / "manifest.json"))
        assert manifest.experiments == ["table-1"]
        assert manifest.git_sha == git_revision() != "unknown"
        assert manifest.parameter_hash == parameter_hash(manifest.parameters)
        assert manifest.parameters["command"] == "run"
        assert manifest.counters["batch_solves"] >= 1

    def test_trace_accepts_alias(self, tmp_path):
        out = str(tmp_path / "out")
        assert main(["run", "table1", "--quick", "--trace", out]) == 0
        manifest = RunManifest.load(str(tmp_path / "out" / "manifest.json"))
        assert manifest.experiments == ["table-1"]

    def test_untraced_run_writes_nothing(self, tmp_path, capsys):
        assert main(["run", "figure-7", "--quick"]) == 0
        assert "trace written" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestDiagnoseCommand:
    def test_diagnose_reports_iterations_and_branches(self, capsys):
        assert main(["diagnose", "table-1"]) == 0
        out = capsys.readouterr().out
        assert "== diagnose table-1 ==" in out
        assert "bisection iterations" in out
        assert "branches" in out
        assert "flags" in out

    def test_diagnose_accepts_alias_and_threshold(self, capsys):
        assert main(["diagnose", "table1", "--threshold", "0.5"]) == 0
        out = capsys.readouterr().out
        # table-1 solves include rho > 0.5 points, so the lowered
        # threshold must flag saturated operating points.
        assert "solve(s) flagged" in out
        assert "rho =" in out

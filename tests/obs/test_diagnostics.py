"""Tests for solver convergence diagnostics and the diagnose report."""

from repro import obs
from repro.core.combined import solve, solve_batch
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.obs.diagnostics import SolveDiagnostics, SolveRecord, render_diagnosis


def alewife_like_models():
    node = NodeModel(
        sensitivity=3.2, intercept=100.0, messages_per_transaction=3.2
    )
    network = TorusNetworkModel(dimensions=2, message_size=12.0)
    return node, network


class TestCollection:
    def test_disabled_solve_records_nothing(self):
        node, network = alewife_like_models()
        solve(node, network, distance=3.0)
        assert len(obs.diagnostics()) == 0

    def test_scalar_solve_records_convergence(self):
        obs.enable(fresh=True)
        node, network = alewife_like_models()
        solve(node, network, distance=3.0)
        records = obs.diagnostics().records
        assert len(records) == 1
        (record,) = records
        assert record.kind == "scalar"
        assert record.branch in ("linear", "bisection")
        assert record.distance == 3.0
        if record.branch == "bisection":
            assert 1 <= record.iterations <= 200
            assert record.bracket_width >= 0.0
        assert 0.0 <= record.utilization <= 1.0

    def test_batch_solve_records_one_per_lane(self):
        obs.enable(fresh=True)
        node, network = alewife_like_models()
        distances = [2.0, 3.0, 4.0, 5.0]
        solve_batch(node, network, distances)
        records = obs.diagnostics().records
        assert len(records) == len(distances)
        assert all(r.kind == "batch" for r in records)
        assert sorted(r.distance for r in records) == distances

    def test_batch_matches_scalar_branches(self):
        node, network = alewife_like_models()
        distances = [2.0, 4.0, 6.0]
        obs.enable(fresh=True)
        for d in distances:
            solve(node, network, d)
        scalar = {r.distance: r for r in obs.diagnostics().records}
        obs.reset()
        solve_batch(node, network, distances)
        batch = {r.distance: r for r in obs.diagnostics().records}
        for d in distances:
            assert scalar[d].branch == batch[d].branch

    def test_capacity_counts_drops(self):
        diagnostics = SolveDiagnostics(capacity=2)
        for _ in range(5):
            diagnostics.record("scalar", "bisection", 1.0, iterations=44)
        assert len(diagnostics) == 2
        assert diagnostics.dropped == 3

    def test_record_round_trips_as_dict(self):
        record = SolveRecord(
            kind="scalar", branch="bisection", distance=4.0, iterations=45,
            bracket_width=1e-13, residual=2e-12, message_rate=0.01,
            utilization=0.42,
        )
        assert SolveRecord.from_dict(record.as_dict()) == record


class TestFlagging:
    def test_healthy_records_not_flagged(self):
        diagnostics = SolveDiagnostics()
        diagnostics.record(
            "scalar", "bisection", 3.0, iterations=45, utilization=0.4
        )
        assert diagnostics.flagged() == []

    def test_near_nonconvergent_flagged(self):
        diagnostics = SolveDiagnostics()
        diagnostics.record(
            "scalar", "bisection", 3.0, iterations=180, utilization=0.4
        )
        ((record, reasons),) = diagnostics.flagged()
        assert record.iterations == 180
        assert any("near-non-convergent" in reason for reason in reasons)

    def test_saturated_utilization_flagged(self):
        diagnostics = SolveDiagnostics()
        diagnostics.record(
            "batch", "bisection", 500.0, iterations=44, utilization=0.98
        )
        ((_, reasons),) = diagnostics.flagged(utilization_threshold=0.95)
        assert any("saturated" in reason for reason in reasons)

    def test_threshold_is_respected(self):
        diagnostics = SolveDiagnostics()
        diagnostics.record(
            "batch", "bisection", 500.0, iterations=44, utilization=0.98
        )
        assert diagnostics.flagged(utilization_threshold=0.99) == []

    def test_saturation_branch_flagged(self):
        diagnostics = SolveDiagnostics()
        diagnostics.record("scalar", "saturation", 9.0)
        ((_, reasons),) = diagnostics.flagged()
        assert any("branch" in reason for reason in reasons)

    def test_iteration_stats_cover_bisection_only(self):
        diagnostics = SolveDiagnostics()
        diagnostics.record("scalar", "linear", 1.0, iterations=0)
        assert diagnostics.iteration_stats() is None
        diagnostics.record("scalar", "bisection", 2.0, iterations=40)
        diagnostics.record("scalar", "bisection", 3.0, iterations=50)
        stats = diagnostics.iteration_stats()
        assert stats == {"min": 40, "median": 45, "max": 50}


class TestRendering:
    def test_render_includes_branches_iterations_and_flags(self):
        diagnostics = SolveDiagnostics()
        diagnostics.record(
            "scalar", "bisection", 3.0, iterations=45, utilization=0.4
        )
        diagnostics.record(
            "batch", "bisection", 500.0, iterations=44, utilization=0.98
        )
        report = render_diagnosis(
            diagnostics, "figure-3",
            perf_delta={"solve_calls": 1, "batch_solves": 1,
                        "batch_points": 1, "cache_hits": 0},
        )
        assert "diagnose figure-3" in report
        assert "bisection 2" in report
        assert "1 solve(s) flagged" in report
        assert "rho = 0.980" in report

    def test_render_reports_no_flags(self):
        diagnostics = SolveDiagnostics()
        diagnostics.record(
            "scalar", "bisection", 3.0, iterations=45, utilization=0.4
        )
        report = render_diagnosis(diagnostics, "table-1")
        assert "flags              : none" in report

"""Tests that the Appendix A nomenclature table matches the real API."""

import importlib

from repro.nomenclature import SYMBOLS, describe


def _resolve(dotted: str):
    """Resolve ``pkg.mod.Class.attr`` to the attribute object or name."""
    parts = dotted.split(".")
    # Find the longest importable module prefix.
    for cut in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        for attr in parts[cut:]:
            if isinstance(obj, type):
                # Dataclass fields or properties on a class.
                if attr in getattr(obj, "__dataclass_fields__", {}):
                    return attr
                obj = getattr(obj, attr)
            else:
                obj = getattr(obj, attr)
        return obj
    raise ImportError(f"cannot import any prefix of {dotted}")


class TestNomenclature:
    def test_every_symbol_resolves(self):
        for symbol in SYMBOLS:
            _resolve(symbol.api)  # raises on a dangling reference

    def test_covers_the_appendix(self):
        names = {s.symbol for s in SYMBOLS}
        for required in (
            "n", "k", "N", "T_r", "s", "d", "p", "T_s", "c", "g",
            "T_f", "T_t", "t_t", "r_t", "T_m", "t_m", "r_m", "B",
            "k_d", "rho", "T_h",
        ):
            assert required in names

    def test_describe_renders(self):
        text = describe()
        assert "Appendix A" in text
        assert "latency sensitivity" in text

"""Tests for parameter-grid campaigns and result export."""

import csv
import json

import pytest

from repro.analysis.export import data_to_json, records_to_csv, rows_to_csv
from repro.errors import ParameterError
from repro.experiments.campaign import run_campaign


@pytest.fixture(scope="module")
def small_campaign():
    return run_campaign(contexts=[1, 2], processors=[1e3, 1e6], slowdown=[1, 8])


class TestRunCampaign:
    def test_grid_size(self, small_campaign):
        assert len(small_campaign) == 8

    def test_where_filters_exactly(self, small_campaign):
        subset = small_campaign.where(contexts=2, slowdown=8.0)
        assert len(subset) == 2
        assert all(r.contexts == 2 and r.slowdown == 8.0 for r in subset)

    def test_where_rejects_unknown_axis(self, small_campaign):
        with pytest.raises(ParameterError):
            small_campaign.where(flux_capacitors=3)

    def test_matches_direct_queries(self, small_campaign):
        from repro.experiments.alewife import alewife_system

        (record,) = small_campaign.where(
            contexts=1, processors=1000.0, slowdown=1.0
        )
        direct = alewife_system(contexts=1).expected_gain(1000.0)
        assert record.gain == pytest.approx(direct.gain)
        assert record.random_distance == pytest.approx(direct.random_distance)

    def test_slowdown_column_trend(self, small_campaign):
        fast = small_campaign.where(contexts=1, processors=1e6, slowdown=1.0)
        slow = small_campaign.where(contexts=1, processors=1e6, slowdown=8.0)
        assert slow[0].gain > fast[0].gain

    def test_render_truncation(self, small_campaign):
        text = small_campaign.render(max_rows=3)
        assert "showing 3 of 8" in text

    def test_defaults_fill_unswept_axes(self):
        campaign = run_campaign(contexts=[4])
        assert len(campaign) == 1
        assert campaign.records[0].dimensions == 2

    def test_rejects_unknown_axis(self):
        with pytest.raises(ParameterError):
            run_campaign(warp=[9])

    def test_rejects_empty_axis(self):
        with pytest.raises(ParameterError):
            run_campaign(contexts=[])

    def test_grain_scale_axis(self):
        campaign = run_campaign(grain_scale=[1.0, 10.0], processors=[1e4])
        fine, coarse = campaign.records
        # Coarser grain -> less communication-bound -> smaller gain.
        assert coarse.gain < fine.gain


class TestExport:
    def test_records_to_csv_roundtrip(self, small_campaign, tmp_path):
        path = records_to_csv(
            str(tmp_path / "campaign.csv"), small_campaign.records
        )
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 8
        assert float(rows[0]["gain"]) > 0

    def test_rows_to_csv_validates_shape(self, tmp_path):
        with pytest.raises(ParameterError):
            rows_to_csv(str(tmp_path / "x.csv"), ["a", "b"], [(1,)])

    def test_rows_to_csv_rejects_empty_headers(self, tmp_path):
        with pytest.raises(ParameterError):
            rows_to_csv(str(tmp_path / "x.csv"), [], [])

    def test_records_to_csv_needs_records(self, tmp_path):
        with pytest.raises(ParameterError):
            records_to_csv(str(tmp_path / "x.csv"), [])

    def test_data_to_json(self, tmp_path):
        path = data_to_json(
            str(tmp_path / "data.json"), {"sizes": [1, 2], "note": "x"}
        )
        loaded = json.load(open(path))
        assert loaded["sizes"] == [1, 2]

"""Calibration tests: the Alewife system must reproduce the paper's numbers.

These are the headline reproduction checks: Table 1, Figure 6's limiting
value and approach rate, Figure 7's gain levels, and Figure 8's structure.
Tolerances reflect that we re-derived ``T_r`` and ``T_f`` from the paper's
descriptions rather than from unpublished simulator calibration data.
"""

import pytest

from repro.experiments.alewife import (
    CONTEXT_SWITCH_CYCLES,
    MESSAGE_FLITS,
    MESSAGES_PER_TRANSACTION,
    alewife_system,
    alewife_validation_system,
    critical_messages,
)


class TestKnownConstants:
    def test_message_size_96_bits_on_8_bit_channels(self):
        assert MESSAGE_FLITS == 12.0

    def test_messages_per_transaction(self):
        assert MESSAGES_PER_TRANSACTION == 3.2

    def test_sparcle_context_switch(self):
        assert CONTEXT_SWITCH_CYCLES == 11.0

    def test_critical_messages_near_two(self):
        assert critical_messages(1) == pytest.approx(2.0, rel=0.1)

    def test_critical_messages_grows_15_percent_to_four_contexts(self):
        # Section 3.3: "c is measured to be 15 percent larger" at p = 4.
        assert critical_messages(4) / critical_messages(1) == pytest.approx(1.15)

    def test_sensitivity_anchored_at_two_contexts(self):
        # Figure 6's quoted s = 3.26 for the two-context application.
        assert alewife_system(contexts=2).latency_sensitivity == pytest.approx(
            3.26
        )

    def test_network_clock_twice_processor(self):
        assert alewife_system().clocks.network_speedup == 2.0


class TestFigure6:
    def test_limiting_value_is_9_8_network_cycles(self):
        system = alewife_system(contexts=2)
        assert system.limiting_per_hop_latency() == pytest.approx(9.78, abs=0.05)

    def test_eighty_percent_by_a_few_thousand_processors(self):
        system = alewife_system(contexts=2)
        limit = system.limiting_per_hop_latency()
        point = system.operating_point_random(4000)
        assert point.per_hop_latency > 0.8 * limit

    def test_not_yet_eighty_percent_at_few_hundred(self):
        system = alewife_system(contexts=2)
        limit = system.limiting_per_hop_latency()
        point = system.operating_point_random(256)
        assert point.per_hop_latency < 0.8 * limit

    def test_larger_grain_same_limit_slower_approach(self):
        base = alewife_system(contexts=2)
        coarse = base.with_grain_scaled(10.0)
        assert coarse.limiting_per_hop_latency() == pytest.approx(
            base.limiting_per_hop_latency()
        )
        assert (
            coarse.operating_point_random(4000).per_hop_latency
            < base.operating_point_random(4000).per_hop_latency
        )


class TestFigure7:
    @pytest.mark.parametrize("contexts", [1, 2, 4])
    def test_unity_gain_at_ten_processors(self, contexts):
        gain = alewife_system(contexts=contexts).expected_gain(10).gain
        assert gain == pytest.approx(1.0, abs=0.05)

    @pytest.mark.parametrize("contexts", [1, 2, 4])
    def test_gain_of_two_around_a_thousand_processors(self, contexts):
        gain = alewife_system(contexts=contexts).expected_gain(1000).gain
        assert 1.7 < gain < 2.4

    @pytest.mark.parametrize("contexts", [1, 2, 4])
    def test_gain_40_to_55_at_a_million_processors(self, contexts):
        gain = alewife_system(contexts=contexts).expected_gain(1e6).gain
        assert 38.0 < gain < 57.0

    def test_curves_nearly_coincide(self):
        # "The curves are strikingly similar."
        gains = [
            alewife_system(contexts=p).expected_gain(1000).gain for p in (1, 2, 4)
        ]
        assert max(gains) / min(gains) < 1.1


class TestTable1:
    # Rows: network speed relative to processors; the Section 3
    # architecture is the "2x faster" row (slowdown factor 1).
    EXPECTED = [
        (1, 2.1, 41.2),
        (2, 3.1, 68.3),
        (4, 4.5, 101.6),
        (8, 5.9, 134.3),
    ]

    @pytest.mark.parametrize("slowdown,thousand,million", EXPECTED)
    def test_thousand_processor_column(self, slowdown, thousand, million):
        system = alewife_system(contexts=1).with_network_slowdown(slowdown)
        assert system.expected_gain(1000).gain == pytest.approx(thousand, rel=0.06)

    @pytest.mark.parametrize("slowdown,thousand,million", EXPECTED)
    def test_million_processor_column(self, slowdown, thousand, million):
        system = alewife_system(contexts=1).with_network_slowdown(slowdown)
        assert system.expected_gain(1e6).gain == pytest.approx(million, rel=0.06)

    def test_eight_fold_slowdown_triples_gains(self):
        # Section 1.3 / Section 6 summary claim.
        base = alewife_system(contexts=1)
        slowed = base.with_network_slowdown(8)
        ratio_million = (
            slowed.expected_gain(1e6).gain / base.expected_gain(1e6).gain
        )
        assert ratio_million == pytest.approx(3.0, rel=0.15)


class TestFigure8:
    def test_fixed_transaction_about_two_thirds_at_one_context(self):
        system = alewife_system(contexts=1)
        breakdown = system.breakdown(1.0)
        assert breakdown.fixed_transaction_share == pytest.approx(2 / 3, abs=0.05)

    def test_fixed_transaction_contribution_is_1_to_1_5_us(self):
        # ~40 processor cycles at 33-40 MHz is 1.0-1.2 us.
        for contexts in (1, 2, 4):
            breakdown = alewife_system(contexts=contexts).breakdown(1.0)
            microseconds = breakdown.fixed_transaction / 33.0  # at 33 MHz
            assert 0.9 < microseconds < 1.6

    def test_random_mapping_variable_on_par_with_fixed(self):
        # Section 4.2: the drastic variable-message increase only brings
        # it "on par" with the fixed components at N = 1,000.
        for contexts in (1, 2, 4):
            system = alewife_system(contexts=contexts)
            gain = system.expected_gain(1000)
            breakdown = system.breakdown(gain.random_distance)
            ratio = breakdown.variable_message / breakdown.fixed_total
            assert 0.5 < ratio < 2.0

    def test_ideal_mapping_variable_negligible(self):
        breakdown = alewife_system(contexts=1).breakdown(1.0)
        assert breakdown.variable_message < 0.1 * breakdown.fixed_total


class TestSectionFourPointTwoNarrative:
    def test_distance_ratio_nearly_16_at_thousand_processors(self):
        result = alewife_system(contexts=1).expected_gain(1000)
        assert result.distance_ratio == pytest.approx(15.8, abs=0.5)

    def test_per_hop_ratio_factor_four_or_more(self):
        # "T_h will be substantially larger, by a factor of four or more"
        system = alewife_system(contexts=2)
        gain = system.expected_gain(1000)
        assert gain.random.per_hop_latency / gain.ideal.per_hop_latency > 4.0

    def test_validation_system_enables_node_channels(self):
        assert alewife_validation_system().network.node_channel_contention
        assert not alewife_system().network.node_channel_contention

"""Tests for the simulated machine-size scaling experiment."""

import pytest

from repro.experiments.scaling_sim import run
from repro.experiments.validation_data import clear_cache


@pytest.fixture(scope="module")
def result():
    clear_cache()
    try:
        yield run(quick=True)
    finally:
        clear_cache()


class TestScalingSim:
    def test_distance_rises_with_machine_size(self, result):
        distances = result.data["distance"]
        assert all(b > a for a, b in zip(distances, distances[1:]))

    def test_utilization_rises_with_machine_size(self, result):
        rhos = result.data["rho"]
        assert all(b > a for a, b in zip(rhos, rhos[1:]))

    def test_latency_rises_with_machine_size(self, result):
        latencies = result.data["t_m_sim"]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_model_tracks_simulation(self, result):
        for sim, model in zip(result.data["t_m_sim"], result.data["t_m_model"]):
            assert model == pytest.approx(sim, rel=0.35)

    def test_registered(self):
        from repro.experiments.runner import experiment_ids

        assert "scaling-sim" in experiment_ids()

"""Tests for the simulated machine-size scaling experiment."""

import pytest

from repro.experiments.scaling_sim import run
from repro.experiments.validation_data import clear_cache


@pytest.fixture(scope="module")
def result():
    clear_cache()
    try:
        yield run(quick=True)
    finally:
        clear_cache()


class TestScalingSim:
    def test_distance_rises_with_machine_size(self, result):
        distances = result.data["distance"]
        assert all(b > a for a, b in zip(distances, distances[1:]))

    def test_utilization_rises_with_machine_size(self, result):
        rhos = result.data["rho"]
        assert all(b > a for a, b in zip(rhos, rhos[1:]))

    def test_latency_rises_with_machine_size(self, result):
        latencies = result.data["t_m_sim"]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_model_tracks_simulation(self, result):
        for sim, model in zip(result.data["t_m_sim"], result.data["t_m_model"]):
            assert model == pytest.approx(sim, rel=0.35)

    def test_registered(self):
        from repro.experiments.runner import experiment_ids

        assert "scaling-sim" in experiment_ids()

    def test_no_contention_table_without_telemetry(self, result):
        assert len(result.tables) == 1
        assert "contention" not in result.render()


class TestScalingSimTelemetry:
    @pytest.fixture(scope="class")
    def telemetry_result(self):
        clear_cache()
        try:
            yield run(quick=True, telemetry=True)
        finally:
            clear_cache()

    def test_appends_contention_table(self, telemetry_result):
        assert len(telemetry_result.tables) == 2
        text = telemetry_result.render()
        assert "Model vs measured contention" in text
        assert "rho meas" in text and "rho model" in text
        # One row per swept radix (quick sweep: 4 and 8).
        assert "16n radix-4" in text
        assert "64n radix-8" in text

    def test_point_estimates_unchanged_by_telemetry(self, telemetry_result):
        clear_cache()
        try:
            bare = run(quick=True)
        finally:
            clear_cache()
        assert telemetry_result.data["t_m_sim"] == bare.data["t_m_sim"]
        assert telemetry_result.data["rho"] == bare.data["rho"]

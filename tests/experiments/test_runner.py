"""Tests for the experiment registry and the analytic drivers.

The analytic experiments (Figures 6-8, Table 1, most ablations) run in
full here; the simulation-backed ones (Figures 3-5, buffering ablation)
are exercised through their quick modes in test_validation_experiments.
"""

import pytest

from repro.errors import ParameterError
from repro.experiments import fig6, fig7, fig8, table1
from repro.experiments.ablations import (
    run_clamp,
    run_dimension,
    run_feedback,
    run_node_channel,
)
from repro.experiments.runner import REGISTRY, experiment_ids, run_experiment


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = experiment_ids()
        for required in (
            "figure-3", "figure-4", "figure-5", "figure-6", "figure-7",
            "figure-8", "table-1",
        ):
            assert required in ids

    def test_ablations_registered(self):
        assert sum(1 for i in experiment_ids() if i.startswith("ablation-")) >= 4

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ParameterError):
            run_experiment("figure-99")

    def test_registry_values_are_callables(self):
        assert all(callable(v) for v in REGISTRY.values())

    def test_telemetry_gate_names_the_supported_experiments(self):
        from repro.experiments.runner import TELEMETRY_RUNNERS

        assert "scaling-sim" in TELEMETRY_RUNNERS
        with pytest.raises(ParameterError, match="does not support"):
            run_experiment("figure-6", quick=True, telemetry=True)


class TestFigure6:
    def test_limit_and_approach(self):
        result = fig6.run(quick=True)
        assert result.data["limit"] == pytest.approx(9.78, abs=0.05)
        assert 1000 < result.data["eighty_percent_size"] < 10000

    def test_base_grain_approaches_faster(self):
        result = fig6.run(quick=True)
        # At every swept size the small-grain T_h >= the coarse-grain T_h.
        for base, coarse in zip(result.data["base"], result.data["coarse"]):
            assert base >= coarse - 1e-9

    def test_render_contains_table(self):
        text = fig6.run(quick=True).render()
        assert "Per-hop latency vs machine size" in text


class TestFigure7:
    def test_landmarks(self):
        result = fig7.run(quick=True)
        gains = result.data["gains"]
        for p in (1, 2, 4):
            assert gains[p][0] == pytest.approx(1.0, abs=0.05)
            assert 35 < gains[p][-1] < 60

    def test_monotone_growth(self):
        result = fig7.run(quick=True)
        for p in (1, 2, 4):
            series = result.data["gains"][p]
            assert all(b >= a for a, b in zip(series, series[1:]))


class TestFigure8:
    def test_shares_and_structure(self):
        result = fig8.run()
        shares = result.data["fixed_transaction_share"]
        assert shares[(1, "ideal")] == pytest.approx(2 / 3, abs=0.05)
        # Six cases: ideal/random x p=1,2,4.
        assert len(shares) == 6

    def test_random_distance_matches_eq17(self):
        result = fig8.run()
        assert result.data["random_distance"] == pytest.approx(15.8, abs=0.1)


class TestTable1:
    def test_reproduces_paper_columns(self):
        result = table1.run()
        for factor, paper_thousand, paper_million in result.data["paper"]:
            ours = result.data["reproduced"][factor]
            assert ours[0] == pytest.approx(paper_thousand, rel=0.06)
            assert ours[1] == pytest.approx(paper_million, rel=0.06)


class TestAnalyticAblations:
    def test_feedback_ablation_runs(self):
        result = run_feedback()
        assert "saturated" in result.render()

    def test_clamp_ablation_runs(self):
        result = run_clamp()
        assert "clamp" in result.render().lower()

    def test_node_channel_ablation_runs(self):
        result = run_node_channel()
        assert result.tables

    def test_dimension_ablation_runs(self):
        result = run_dimension()
        assert result.tables


class TestParallelRunner:
    """run_all(jobs=N) must match the serial path result for result."""

    @pytest.fixture
    def small_registry(self, monkeypatch):
        # Restrict the campaign to cheap analytic experiments so the
        # serial-vs-parallel comparison stays fast; workers resolve the
        # identifiers against the real registry.
        from repro.experiments import runner

        subset = ["figure-6", "figure-7", "table-1"]
        monkeypatch.setattr(runner, "experiment_ids", lambda: subset)
        return subset

    def test_parallel_matches_serial(self, small_registry):
        from repro.experiments.runner import run_all

        serial = run_all(quick=True, jobs=1)
        parallel = run_all(quick=True, jobs=2)
        assert [r.experiment for r in serial] == small_registry
        assert [r.experiment for r in parallel] == small_registry
        for s, p in zip(serial, parallel):
            assert s.render() == p.render()

    def test_jobs_one_never_spawns_a_pool(self, small_registry, monkeypatch):
        from repro.experiments import runner

        def boom(*args, **kwargs):
            raise AssertionError("jobs=1 must not create a worker pool")

        monkeypatch.setattr(runner, "get_pool", boom)
        results = runner.run_all(quick=True, jobs=1)
        assert [r.experiment for r in results] == small_registry

    def test_pool_failure_falls_back_loudly(self, small_registry, monkeypatch):
        # Satellite contract: a degraded --jobs run is visible — the
        # pool.fallback counter moves and a PoolFallbackWarning fires —
        # and the results still come back via the serial path.
        from repro import obs
        from repro.core.pool import PoolFallbackWarning
        from repro.experiments import runner

        def no_pool(*args, **kwargs):
            raise OSError("process creation disabled")

        monkeypatch.setattr(runner, "get_pool", no_pool)
        counter = obs.REGISTRY.counter(
            "pool.fallback",
            help="parallel runs degraded to the serial path",
        )
        before = counter.value
        with pytest.warns(PoolFallbackWarning, match="run_all"):
            results = runner.run_all(quick=True, jobs=2)
        assert counter.value == before + 1
        assert [r.experiment for r in results] == small_registry


class TestPerfCounters:
    def test_run_experiment_records_counters(self):
        result = run_experiment("figure-6", quick=True)
        assert result.perf["wall_seconds"] >= 0
        assert result.perf["solve_calls"] > 0

    def test_perf_is_not_rendered(self):
        result = run_experiment("figure-6", quick=True)
        assert "wall_seconds" not in result.render()

    def test_render_perf_line(self):
        result = run_experiment("figure-6", quick=True)
        line = result.render_perf()
        assert line.startswith("[perf] figure-6:")
        assert "solve_calls" in line

"""Quick-mode tests for the simulation-backed experiments (Figures 3-5).

These exercise the full pipeline — mapping suite, 64-node simulations,
curve fits, model comparison — with shortened measurement windows.  The
memoized validation data is shared across the three figures, so the
expensive simulations run once per context count for this whole module.
"""

import pytest

from repro.experiments import fig3, fig4, fig5
from repro.experiments.validation_data import (
    clear_cache,
    validation_config,
    validation_report,
)


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestValidationData:
    def test_config_windows(self):
        quick = validation_config(1, quick=True)
        full = validation_config(1, quick=False)
        assert quick.total_network_cycles < full.total_network_cycles
        assert quick.contexts == full.contexts == 1

    def test_memoization(self):
        first = validation_report(1, quick=True)
        second = validation_report(1, quick=True)
        assert first is second


class TestFigure3:
    def test_slopes_grow_with_contexts(self):
        result = fig3.run(quick=True)
        slopes = result.data["slopes"]
        assert slopes[1] < slopes[2] < slopes[4]

    def test_slope_growth_slightly_sublinear(self):
        # Paper: "increases in slope ... slightly less than expected".
        slopes = fig3.run(quick=True).data["slopes"]
        assert 1.4 < slopes[2] / slopes[1] < 2.2
        assert 2.2 < slopes[4] / slopes[1] < 4.5

    def test_curves_are_linear(self):
        reports = fig3.run(quick=True).data["reports"]
        for report in reports.values():
            assert report.curve.fit.r_squared > 0.8


class TestFigure4:
    def test_rate_errors_within_validation_band(self):
        reports = fig4.run(quick=True).data["reports"]
        # Paper: "consistently within a few percent" — hold the p=1 runs
        # to a firm band, the heavily loaded p=4 runs to a looser one
        # (see EXPERIMENTS.md on permutation-traffic deviations).
        assert reports[1].mean_rate_error < 0.12
        assert reports[4].mean_rate_error < 0.30

    def test_rates_fall_with_distance(self):
        reports = fig4.run(quick=True).data["reports"]
        rows = reports[1].rows
        assert rows[0].simulated.message_rate > rows[-1].simulated.message_rate


class TestFigure5:
    def test_latency_tracking(self):
        reports = fig5.run(quick=True).data["reports"]
        assert reports[1].max_latency_error_cycles < 12.0

    def test_latencies_grow_with_distance(self):
        reports = fig5.run(quick=True).data["reports"]
        rows = reports[1].rows
        assert (
            rows[-1].simulated.mean_message_latency
            > rows[0].simulated.mean_message_latency
        )

    def test_render_mentions_both_series(self):
        text = fig5.run(quick=True).render()
        assert "sim T_m" in text and "model T_m" in text

"""Tests for the additional traffic generators."""

import random

import pytest

from repro.errors import ParameterError
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.generators import (
    HotSpotProgram,
    PermutationProgram,
    UniformRandomProgram,
    bit_reverse_partners,
    transpose_partners,
    uniform_random_graph_programs,
)


class TestUniformRandom:
    def make(self, **kwargs):
        defaults = dict(
            instance=0, thread=3, threads=16, compute_cycles_mean=8,
            compute_jitter=0.0,
        )
        defaults.update(kwargs)
        return UniformRandomProgram(**defaults)

    def test_never_reads_own_block(self):
        program = self.make()
        rng = random.Random(0)
        for _ in range(500):
            (instance, target), is_write = program.next_access(rng)
            if not is_write:
                assert target != 3

    def test_write_every_fifth_access(self):
        program = self.make()
        rng = random.Random(0)
        kinds = [program.next_access(rng)[1] for _ in range(10)]
        assert kinds == [False] * 4 + [True] + [False] * 4 + [True]

    def test_writes_target_own_block(self):
        program = self.make()
        rng = random.Random(0)
        for _ in range(20):
            block, is_write = program.next_access(rng)
            if is_write:
                assert block == (0, 3)

    def test_reads_cover_many_targets(self):
        program = self.make()
        rng = random.Random(0)
        targets = {
            program.next_access(rng)[0][1]
            for _ in range(300)
        }
        assert len(targets) > 10

    def test_rejects_tiny_thread_count(self):
        with pytest.raises(ParameterError):
            self.make(threads=1)

    def test_rejects_zero_reads_per_write(self):
        with pytest.raises(ParameterError):
            self.make(reads_per_write=0)


class TestPermutation:
    def test_reads_go_to_partner_only(self):
        program = PermutationProgram(
            instance=0, thread=2, partner=9, compute_cycles_mean=8
        )
        rng = random.Random(0)
        for _ in range(10):
            (instance, target), is_write = program.next_access(rng)
            assert target == (2 if is_write else 9)

    def test_rejects_self_partner(self):
        with pytest.raises(ParameterError):
            PermutationProgram(
                instance=0, thread=2, partner=2, compute_cycles_mean=8
            )


class TestHotSpot:
    def test_all_hot_reads_converge(self):
        program = HotSpotProgram(
            instance=0, thread=3, threads=16, hot_thread=0,
            hot_fraction=1.0, compute_cycles_mean=8,
        )
        rng = random.Random(0)
        reads = [
            program.next_access(rng)
            for _ in range(50)
        ]
        assert all(
            block[1] == 0 for block, is_write in reads if not is_write
        )

    def test_zero_fraction_is_uniform(self):
        program = HotSpotProgram(
            instance=0, thread=3, threads=16, hot_thread=0,
            hot_fraction=0.0, compute_cycles_mean=8,
        )
        rng = random.Random(0)
        targets = {
            program.next_access(rng)[0][1]
            for _ in range(300)
        }
        assert len(targets) > 8

    def test_hot_thread_itself_reads_elsewhere(self):
        program = HotSpotProgram(
            instance=0, thread=0, threads=16, hot_thread=0,
            hot_fraction=1.0, compute_cycles_mean=8,
        )
        rng = random.Random(0)
        for _ in range(50):
            (instance, target), is_write = program.next_access(rng)
            if not is_write:
                assert target != 0

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(ParameterError):
            HotSpotProgram(
                instance=0, thread=3, threads=16, hot_thread=0,
                hot_fraction=fraction, compute_cycles_mean=8,
            )


class TestPartnerConstructions:
    def test_transpose_has_no_self_partners(self):
        partners = transpose_partners(8)
        assert all(p != t for t, p in enumerate(partners))

    def test_transpose_off_diagonal_is_involution(self):
        partners = transpose_partners(8)
        # Off-diagonal threads: partner's partner is the thread itself.
        for row in range(8):
            for col in range(8):
                if row != col:
                    thread = row * 8 + col
                    assert partners[partners[thread]] == thread

    def test_bit_reverse_has_no_self_partners(self):
        partners = bit_reverse_partners(16)
        assert all(p != t for t, p in enumerate(partners))
        assert all(0 <= p < 16 for p in partners)

    def test_bit_reverse_rejects_non_power_of_two(self):
        with pytest.raises(ParameterError):
            bit_reverse_partners(12)


class TestGraphSizedBuilders:
    def test_uniform_program_grid(self):
        graph = torus_neighbor_graph(4, 2)
        programs = uniform_random_graph_programs(graph, 2, 8)
        assert len(programs) == 2
        assert len(programs[0]) == 16
        assert programs[1][5].instance == 1
        assert programs[1][5].thread == 5

    def test_rejects_zero_instances(self):
        graph = torus_neighbor_graph(4, 2)
        with pytest.raises(ParameterError):
            uniform_random_graph_programs(graph, 0, 8)


class TestSimulatorIntegration:
    def test_uniform_random_runs_on_machine(self):
        from repro.mapping.strategies import identity_mapping
        from repro.sim.config import SimulationConfig
        from repro.sim.machine import Machine

        config = SimulationConfig(
            radix=4, dimensions=2, contexts=1,
            warmup_network_cycles=500, measure_network_cycles=2500,
        )
        graph = torus_neighbor_graph(4, 2)
        programs = uniform_random_graph_programs(graph, 1, 8)
        summary = Machine(config, identity_mapping(16), programs).run()
        # Uniform traffic on a 4x4 torus averages ~2.13 hops regardless
        # of mapping.
        assert 1.7 < summary.mean_message_hops < 2.6
        assert summary.remote_transactions > 0

"""Tests for the synthetic workload programs."""

import random

import pytest

from repro.errors import ParameterError
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.base import jittered_cycles
from repro.workload.synthetic import NeighborExchangeProgram, build_programs


class TestJitteredCycles:
    def test_zero_jitter_is_exact(self):
        rng = random.Random(0)
        assert jittered_cycles(10, 0.0, rng) == 10

    def test_jitter_stays_in_band(self):
        rng = random.Random(0)
        values = [jittered_cycles(10, 0.5, rng) for _ in range(500)]
        assert all(5 <= v <= 15 for v in values)

    def test_mean_preserved(self):
        rng = random.Random(0)
        values = [jittered_cycles(10, 0.5, rng) for _ in range(5000)]
        assert sum(values) / len(values) == pytest.approx(10.0, abs=0.3)

    def test_never_below_one(self):
        rng = random.Random(0)
        assert all(jittered_cycles(1, 0.9, rng) >= 1 for _ in range(100))


class TestNeighborExchangeProgram:
    def make(self, thread=0, neighbors=(1, 2, 3, 4)):
        return NeighborExchangeProgram(
            instance=0, thread=thread, neighbors=list(neighbors),
            compute_cycles_mean=8, compute_jitter=0.0,
        )

    def test_rejects_empty_neighbors(self):
        with pytest.raises(ParameterError):
            NeighborExchangeProgram(
                instance=0, thread=0, neighbors=[], compute_cycles_mean=8
            )

    def test_iteration_pattern(self):
        # Reads each neighbor's word, then writes its own, then repeats.
        program = self.make()
        rng = random.Random(0)
        accesses = [program.next_access(rng) for _ in range(10)]
        expected = [
            ((0, 1), False), ((0, 2), False), ((0, 3), False),
            ((0, 4), False), ((0, 0), True),
        ] * 2
        assert accesses == expected

    def test_instance_isolation(self):
        a = NeighborExchangeProgram(0, 0, [1], compute_cycles_mean=8)
        b = NeighborExchangeProgram(1, 0, [1], compute_cycles_mean=8)
        rng = random.Random(0)
        assert a.next_access(rng)[0][0] == 0
        assert b.next_access(rng)[0][0] == 1

    def test_compute_cycles_uses_mean(self):
        program = self.make()
        assert program.compute_cycles(random.Random(0)) == 8


class TestBuildPrograms:
    def test_shape(self):
        graph = torus_neighbor_graph(4, 2)
        programs = build_programs(graph, instances=2, compute_cycles_mean=8)
        assert len(programs) == 2
        assert len(programs[0]) == 16

    def test_neighbors_come_from_graph(self):
        graph = torus_neighbor_graph(4, 2)
        programs = build_programs(graph, instances=1, compute_cycles_mean=8)
        expected = sorted(dst for dst, _ in graph.out_neighbors(5))
        assert sorted(programs[0][5].neighbors) == expected

    def test_rejects_zero_instances(self):
        graph = torus_neighbor_graph(4, 2)
        with pytest.raises(ParameterError):
            build_programs(graph, instances=0, compute_cycles_mean=8)

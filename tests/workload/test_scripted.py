"""Tests for scripted replay programs."""

import random

import pytest

from repro.errors import ParameterError
from repro.workload.scripted import ScriptedProgram


class TestReplay:
    def test_cyclic_replay(self):
        script = [((0, 1), False), ((0, 0), True)]
        program = ScriptedProgram(accesses=script, cyclic=True)
        rng = random.Random(0)
        played = [program.next_access(rng) for _ in range(5)]
        assert played == script + script + script[:1]
        assert not program.finished

    def test_single_shot_exhausts(self):
        program = ScriptedProgram.single((0, 3), is_write=True)
        rng = random.Random(0)
        assert program.next_access(rng) == ((0, 3), True)
        assert program.finished
        # Exhausted scripts spin on long compute and re-touch block 0.
        assert program.compute_cycles(rng) > 10000
        assert program.next_access(rng) == ((0, 3), False)

    def test_gap_cycles_fixed(self):
        program = ScriptedProgram(accesses=[((0, 0), True)], gap_cycles=7)
        assert program.compute_cycles(random.Random(0)) == 7

    @pytest.mark.parametrize("kwargs", [
        {"accesses": []},
        {"accesses": [((0, 0), True)], "gap_cycles": 0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            ScriptedProgram(**kwargs)


class TestRandomScript:
    def test_deterministic(self):
        a = ScriptedProgram.random_script(0, 3, 16, length=20, seed=5)
        b = ScriptedProgram.random_script(0, 3, 16, length=20, seed=5)
        assert list(a.accesses) == list(b.accesses)

    def test_reads_avoid_own_block(self):
        program = ScriptedProgram.random_script(
            0, 3, 16, length=100, seed=5, write_fraction=0.0
        )
        assert all(block[1] != 3 for block, _ in program.accesses)

    def test_owner_writes_by_default(self):
        program = ScriptedProgram.random_script(
            0, 3, 16, length=100, seed=5, write_fraction=1.0
        )
        assert all(block == (0, 3) for block, is_write in program.accesses)

    def test_remote_writes_spread(self):
        program = ScriptedProgram.random_script(
            0, 3, 16, length=200, seed=5, write_fraction=1.0,
            remote_writes=True,
        )
        owners = {block[1] for block, _ in program.accesses}
        assert len(owners) > 5

    def test_rejects_bad_fraction(self):
        with pytest.raises(ParameterError):
            ScriptedProgram.random_script(
                0, 3, 16, length=10, seed=5, write_fraction=1.5
            )

"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_library_errors_derive_from_repro_error(self):
        for name in (
            "ParameterError",
            "SaturationError",
            "ConvergenceError",
            "TopologyError",
            "MappingError",
            "SimulationError",
            "ProtocolError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_value_style_errors_are_value_errors(self):
        # Callers catching ValueError for bad inputs should still work.
        assert issubclass(errors.ParameterError, ValueError)
        assert issubclass(errors.TopologyError, ValueError)
        assert issubclass(errors.MappingError, ValueError)

    def test_protocol_error_is_simulation_error(self):
        assert issubclass(errors.ProtocolError, errors.SimulationError)

    def test_convergence_error_carries_residual(self):
        err = errors.ConvergenceError("did not converge", residual=0.125)
        assert err.residual == 0.125

    def test_convergence_error_default_residual_is_nan(self):
        err = errors.ConvergenceError("no residual")
        assert err.residual != err.residual  # NaN

    def test_errors_are_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.SaturationError("network full")
